"""Command-line interface.

Three subcommands cover the common workflows without writing any Python:

``python -m repro list``
    Show the registered models, datasets and device presets.

``python -m repro profile --model lenet5 --dataset mnist --batch-size 32``
    Run one profiled training session and print the trace summary, the ATI
    statistics and the occupation breakdown; optionally save the full trace
    to JSON for later analysis.

``python -m repro figure fig6``
    Regenerate one of the paper's figures (``fig2`` … ``fig7``, ``eq1``,
    ``swap``) and print its ASCII rendering / table.

``python -m repro sweep --models alexnet,resnet18 --batch-sizes 32,64,128,256``
    Expand a scenario grid (model × batch size × iterations × allocator ×
    baseline policy × device × dtype × replica count × interconnect), run it
    across worker processes with on-disk result caching and print the tidy
    summary table.  ``--n-devices 1,2,4`` turns each scenario into a
    data-parallel cluster sweep.  ``--swap planner`` runs each scenario under
    the closed-loop swap-execution engine and reports measured peak
    reduction and stall time next to the planner's predictions.
    ``--dry-run`` prints the expanded scenarios without running anything.

``python -m repro report``
    Regenerate EXPERIMENTS.md and the ``docs/figures/`` pages from cached
    sweep results (running any missing scenarios); ``--check`` verifies the
    committed docs match a fresh regeneration and exits nonzero on drift.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import compute_access_intervals, occupation_breakdown, summarize_intervals
from .core.events import PAPER_BUCKETS
from .data.datasets import DATASET_PRESETS
from .device.spec import DEVICE_PRESETS
from .errors import InfeasibleScenarioError, OutOfMemoryError
from .models.registry import available_models
from .swap.policies import SWAP_OFF, available_execution_policies
from .train.session import TrainingRunConfig, run_training_session
from .units import format_bytes
from .viz import render_stacked_bars, render_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Pinpointing the Memory Behaviors of DNN Training'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered models, datasets and devices")

    profile = subparsers.add_parser("profile", help="profile one training workload")
    profile.add_argument("--model", default="paper_mlp", choices=available_models())
    profile.add_argument("--dataset", default="two_cluster", choices=sorted(DATASET_PRESETS))
    profile.add_argument("--batch-size", type=int, default=64)
    profile.add_argument("--iterations", type=int, default=5)
    profile.add_argument("--execution", "--execution-mode", dest="execution_mode",
                         default="symbolic",
                         choices=("eager", "symbolic", "virtual"),
                         help="eager computes real values; symbolic (the "
                              "default, legacy name: virtual) skips the "
                              "numerics but records identical events/timing")
    profile.add_argument("--device", default="titan_x_pascal", choices=sorted(DEVICE_PRESETS))
    profile.add_argument("--allocator", default="caching",
                         choices=("caching", "best_fit", "bump"))
    profile.add_argument("--swap", default=SWAP_OFF,
                         choices=(SWAP_OFF,) + available_execution_policies(),
                         help="run the closed-loop swap-execution engine "
                              "during the session and print its measured "
                              "vs predicted summary")
    profile.add_argument("--input-size", type=int, default=None,
                         help="model input resolution (conv models only)")
    profile.add_argument("--num-classes", type=int, default=None)
    profile.add_argument("--save-trace", default=None, metavar="PATH",
                         help="write the full trace to a JSON file")

    figure = subparsers.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("name", choices=("fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                                         "eq1", "swap"))

    report = subparsers.add_parser(
        "report",
        help="regenerate EXPERIMENTS.md and docs/figures/ from the sweep cache")
    report.add_argument("--check", action="store_true",
                        help="verify the committed docs match a fresh "
                             "regeneration (exit 1 on drift) instead of writing")
    report.add_argument("--profile", default="full", choices=("full", "smoke"),
                        help="grid sizes behind the report (smoke = tiny test grids)")
    report.add_argument("--out", default=".", metavar="DIR",
                        help="repository root to write/check against")
    report.add_argument("--workers", type=int, default=1,
                        help="worker processes for uncached scenarios")
    report.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="sweep result cache directory "
                             "(default: $REPRO_SWEEP_CACHE or .repro_cache/sweeps)")
    report.add_argument("--no-cache", action="store_true",
                        help="ignore cached scenario results")

    sweep = subparsers.add_parser(
        "sweep", help="run a scenario grid in parallel with result caching")
    sweep.add_argument("--models", default="mlp",
                       help="comma-separated model names (see `repro list`)")
    sweep.add_argument("--batch-sizes", default="64",
                       help="comma-separated batch sizes")
    sweep.add_argument("--iterations", default="2",
                       help="comma-separated iteration counts")
    sweep.add_argument("--allocators", default="caching",
                       help="comma-separated allocator policies "
                            "(caching, best_fit, bump)")
    sweep.add_argument("--swap-policies", default="none",
                       help="comma-separated baseline policies (none, planner, "
                            "swap_advisor, zero_offload, recompute, pruning, "
                            "quantization)")
    sweep.add_argument("--devices", default="titan_x_pascal",
                       help="comma-separated device presets")
    sweep.add_argument("--dtypes", default="float32",
                       help="comma-separated training dtypes "
                            "(float32, float16, float64)")
    sweep.add_argument("--n-devices", default="1", dest="n_devices",
                       help="comma-separated data-parallel replica counts "
                            "(e.g. 1,2,4)")
    sweep.add_argument("--interconnects", default="pcie_gen3",
                       help="comma-separated interconnect presets "
                            "(pcie_gen3, pcie_gen4, nvlink2, ethernet_25g)")
    sweep.add_argument("--allreduce", default="ring", choices=("ring", "naive"),
                       help="allreduce cost model used for gradient collectives")
    sweep.add_argument("--swap", default="off",
                       help="comma-separated closed-loop swap-execution modes "
                            "(off, planner, swap_advisor, zero_offload, lru, "
                            "unified): the engine actually evicts/prefetches "
                            "blocks on the copy stream during the simulation "
                            "and reports measured peak reduction + stall "
                            "time next to the policy's predictions; unified "
                            "additionally rematerializes activations when "
                            "replaying the producer is cheaper than the "
                            "transfer; use >=4 iterations to see "
                            "steady-state behavior")
    sweep.add_argument("--seeds", default="0", help="comma-separated RNG seeds")
    sweep.add_argument("--dataset", default="two_cluster",
                       choices=sorted(DATASET_PRESETS))
    sweep.add_argument("--execution", "--execution-mode", dest="execution_mode",
                       default="symbolic",
                       choices=("eager", "symbolic", "virtual", "replay"),
                       help="eager computes real values; symbolic (the "
                            "default, legacy name: virtual) skips the "
                            "numerics but records identical events/timing; "
                            "replay compiles each structure once and "
                            "re-prices the grid from trace templates "
                            "(bit-identical to symbolic)")
    sweep.add_argument("--input-size", type=int, default=None,
                       help="model input resolution (conv models only)")
    sweep.add_argument("--num-classes", type=int, default=None)
    sweep.add_argument("--hidden-dim", type=int, default=None,
                       help="hidden width (mlp models only); deep/wide MLPs "
                            "are the workloads where --swap planner has "
                            "multi-hundred-ms idle windows to hide "
                            "transfers behind")
    sweep.add_argument("--num-layers", type=int, default=None,
                       help="number of hidden layers (mlp models only)")
    sweep.add_argument("--device-memory-gib", default=None,
                       help="comma-separated device memory capacities (GiB, "
                            "floats) — a sweep axis: with --swap on, the "
                            "executor enforces each capacity (forced "
                            "evictions + stalls, structured infeasibility); "
                            "with swap off the allocator is shrunk and OOMs")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = serial)")
    sweep.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="result cache directory "
                            "(default: $REPRO_SWEEP_CACHE or .repro_cache/sweeps)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="ignore and do not read cached results")
    sweep.add_argument("--clear-cache", action="store_true",
                       help="delete cached results before running")
    sweep.add_argument("--retries", type=int, default=0,
                       help="per-scenario retry budget for transient "
                            "failures (worker crashes, timeouts, injected "
                            "faults, I/O errors); deterministic failures "
                            "(infeasible capacity, OOM, config errors) are "
                            "recorded once and never retried")
    sweep.add_argument("--backoff-s", type=float, default=0.05,
                       help="base of the exponential backoff between retry "
                            "rounds (round n sleeps backoff * 2^(n-1))")
    sweep.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-scenario wall-clock deadline in seconds; "
                            "overdue pool workers are killed and the "
                            "scenario is retried or recorded as a timeout")
    sweep.add_argument("--resume", action="store_true",
                       help="consult the per-grid run journal: scenarios "
                            "that already completed are served from cache "
                            "and scenarios that failed deterministically in "
                            "a prior run are skipped instead of re-executed")
    sweep.add_argument("--strict", action="store_true",
                       help="exit nonzero when any scenario failed; the "
                            "default prints the partial grid plus a failure "
                            "footer and exits 0 unless every scenario failed")
    sweep.add_argument("--fault-plan", default=None, metavar="PATH",
                       help="JSON fault-injection plan (testing: see "
                            "repro.experiments.faults.FaultPlan)")
    sweep.add_argument("--chaos-seed", type=int, default=None, metavar="N",
                       help="derive a deterministic fault plan over the "
                            "expanded grid from this seed (chaos testing; "
                            "combine with --retries to watch the sweep "
                            "converge through injected crashes)")
    sweep.add_argument("--dry-run", action="store_true",
                       help="print the expanded scenarios and exit")
    sweep.add_argument("--json", action="store_true", dest="as_json",
                       help="print the tidy rows as JSON instead of a table")
    return parser


def _cmd_list() -> int:
    print("models:   " + ", ".join(available_models()))
    print("datasets: " + ", ".join(sorted(DATASET_PRESETS)))
    print("devices:  " + ", ".join(sorted(DEVICE_PRESETS)))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    model_kwargs = {}
    if args.input_size is not None:
        model_kwargs["input_size"] = args.input_size
    if args.num_classes is not None:
        model_kwargs["num_classes"] = args.num_classes
    config = TrainingRunConfig(
        model=args.model, model_kwargs=model_kwargs, dataset=args.dataset,
        batch_size=args.batch_size, iterations=args.iterations,
        execution_mode=args.execution_mode, device_spec=args.device,
        allocator=args.allocator, swap=args.swap,
    )
    print(f"Profiling {config.describe()} ...")
    result = run_training_session(config)
    trace = result.trace

    print("\nTrace summary:")
    for key, value in trace.summary().items():
        print(f"  {key}: {value}")
    print(f"  peak allocated: {format_bytes(result.peak_allocated_bytes)}")

    summary = summarize_intervals(compute_access_intervals(trace))
    print("\nAccess-time intervals (us):")
    for key, value in summary.to_dict().items():
        print(f"  {key}: {value:.3f}" if isinstance(value, float) else f"  {key}: {value}")

    print("\nOccupation breakdown at peak:")
    print("  " + occupation_breakdown(trace, label=config.describe()).format_row())

    if result.swap_execution is not None:
        print("\nSwap execution (measured vs predicted):")
        for key, value in result.swap_execution.items():
            print(f"  {key}: {value}")

    if args.save_trace:
        path = trace.save_json(args.save_trace)
        print(f"\nTrace written to {path}")
    return 0


def _cmd_figure(name: str) -> int:
    # Imports are local so that `repro list` stays fast.
    from . import experiments
    from .viz import render_cdf, render_gantt, render_scatter, render_violin

    if name == "fig2":
        result = experiments.run_fig2()
        print(render_gantt(result.gantt, width=100, max_rows=30))
        for key, value in result.summary().items():
            print(f"{key}: {value}")
    elif name == "fig3":
        result = experiments.run_fig3()
        print(render_cdf(result.cdf))
        print()
        print(render_violin(result.violins))
        print()
        for key, value in result.summary().items():
            print(f"{key}: {value}")
    elif name == "fig4":
        result = experiments.run_fig4()
        points = [(index, row["ati_us"]) for index, row in enumerate(result.pairwise)]
        print(render_scatter(points))
        for line in result.outliers.describe():
            print("  " + line)
        for key, value in result.summary().items():
            print(f"{key}: {value}")
    elif name == "fig5":
        result = experiments.run_fig5()
        print(render_stacked_bars(result.rows(), PAPER_BUCKETS, label_key="label"))
    elif name == "fig6":
        result = experiments.run_fig6()
        print(render_stacked_bars(result.rows(), PAPER_BUCKETS, label_key="batch_size"))
    elif name == "fig7":
        result = experiments.run_fig7()
        print(render_stacked_bars(result.rows(), PAPER_BUCKETS, label_key="depth"))
    elif name == "eq1":
        result = experiments.run_eq1()
        print(result.bandwidth_report.summary())
        rows = [{"ati_us": ati, "max_swap_kb": round(bound / 1000, 2)}
                for ati, bound in result.sweep]
        print(render_table(rows))
    elif name == "swap":
        result = experiments.run_swap_planner()
        print(result.plan.describe())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.sweep import SweepRunner, default_cache_dir
    from .report import check_report, generate_report, write_report

    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    with SweepRunner(cache_dir=cache_dir, workers=args.workers,
                     use_cache=not args.no_cache) as runner:
        files = generate_report(runner=runner, profile=args.profile)
    if args.check:
        stale = check_report(files, root=args.out)
        if stale:
            print("stale generated docs (regenerate with `python -m repro report`):",
                  file=sys.stderr)
            for path in stale:
                print(f"  {path}", file=sys.stderr)
            return 1
        print(f"{len(files)} generated file(s) in sync")
        return 0
    written = write_report(files, root=args.out)
    for path in written:
        print(f"wrote {path}")
    return 0


def _split_csv(value: str, cast=str) -> list:
    """Parse a comma-separated CLI value into a list of ``cast``ed entries."""
    return [cast(part.strip()) for part in str(value).split(",") if part.strip()]


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json as json_module

    from .device.cluster import INTERCONNECT_PRESETS
    from .experiments.faults import FaultPlan
    from .experiments.sweep import (
        SWAP_EXECUTION_MODES,
        SWAP_POLICIES,
        SweepGrid,
        SweepRunner,
        default_cache_dir,
    )
    from .units import GIB

    # Validate the comma-separated dimensions up front: a typo must fail with
    # a clean message before any scenario (or worker process) starts.
    dimension_choices = (
        ("--models", _split_csv(args.models), set(available_models())),
        ("--allocators", _split_csv(args.allocators), {"caching", "best_fit", "bump"}),
        ("--swap-policies", _split_csv(args.swap_policies), set(SWAP_POLICIES)),
        ("--swap", _split_csv(args.swap), set(SWAP_EXECUTION_MODES)),
        ("--devices", _split_csv(args.devices), set(DEVICE_PRESETS)),
        ("--dtypes", _split_csv(args.dtypes), {"float16", "float32", "float64"}),
        ("--interconnects", _split_csv(args.interconnects),
         set(INTERCONNECT_PRESETS)),
    )
    for flag, values, known in dimension_choices:
        unknown = [value for value in values if value not in known]
        if unknown:
            print(f"error: {flag}: unknown value(s) {', '.join(unknown)} "
                  f"(choose from {', '.join(sorted(known))})", file=sys.stderr)
            return 2
    try:
        batch_sizes = _split_csv(args.batch_sizes, int)
        iterations = _split_csv(args.iterations, int)
        seeds = _split_csv(args.seeds, int)
        n_devices = _split_csv(args.n_devices, int)
    except ValueError as error:
        print(f"error: --batch-sizes/--iterations/--seeds/--n-devices must be "
              f"comma-separated integers ({error})", file=sys.stderr)
        return 2
    try:
        capacities = ([None] if args.device_memory_gib is None
                      else [int(gib * GIB) for gib in
                            _split_csv(args.device_memory_gib, float)])
    except ValueError as error:
        print(f"error: --device-memory-gib must be comma-separated numbers "
              f"({error})", file=sys.stderr)
        return 2
    if any(n < 1 for n in n_devices):
        print("error: --n-devices entries must be positive", file=sys.stderr)
        return 2

    model_kwargs = {}
    if args.input_size is not None:
        model_kwargs["input_size"] = args.input_size
    if args.num_classes is not None:
        model_kwargs["num_classes"] = args.num_classes
    if args.hidden_dim is not None:
        model_kwargs["hidden_dim"] = args.hidden_dim
    if args.num_layers is not None:
        model_kwargs["num_hidden_layers"] = args.num_layers
    grid = SweepGrid(
        models=_split_csv(args.models),
        batch_sizes=batch_sizes,
        iterations=iterations,
        allocators=_split_csv(args.allocators),
        swap_policies=_split_csv(args.swap_policies),
        device_specs=_split_csv(args.devices),
        dtypes=_split_csv(args.dtypes),
        n_devices=n_devices,
        interconnects=_split_csv(args.interconnects),
        allreduce_algorithm=args.allreduce,
        swaps=_split_csv(args.swap),
        seeds=seeds,
        dataset=args.dataset,
        execution_mode=args.execution_mode,
        model_kwargs=model_kwargs,
        device_memory_capacities=capacities,
    )
    scenarios = grid.expand()
    if args.dry_run:
        print(f"{len(scenarios)} scenario(s):")
        for scenario in scenarios:
            print("  " + scenario.describe())
        return 0

    fault_plan = None
    if args.fault_plan is not None:
        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: --fault-plan: cannot load {args.fault_plan} "
                  f"({error})", file=sys.stderr)
            return 2
    elif args.chaos_seed is not None:
        fault_plan = FaultPlan.seeded(args.chaos_seed,
                                      [scenario.key() for scenario in scenarios])
        print(f"chaos: seeded fault plan (seed={args.chaos_seed}, "
              f"{len(fault_plan.faults)} fault(s))")

    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    with SweepRunner(cache_dir=cache_dir, workers=args.workers,
                     use_cache=not args.no_cache,
                     retries=args.retries, backoff_s=args.backoff_s,
                     timeout_s=args.timeout, strict=False,
                     resume=args.resume, fault_plan=fault_plan) as runner:
        if args.clear_cache:
            removed = runner.clear_cache()
            print(f"cleared {removed} cached result(s)")
        try:
            result = runner.run(scenarios)
        except (InfeasibleScenarioError, OutOfMemoryError) as error:
            print(f"error: a scenario does not fit its --device-memory-gib "
                  f"capacity: {error}", file=sys.stderr)
            return 1

    if args.as_json:
        print(json_module.dumps(result.rows(), indent=2, default=str))
    else:
        print(result.summary_table())
    replay_note = (f", {result.replayed} replayed from "
                   f"{result.templates_compiled} template(s)"
                   if result.replayed else "")
    if result.replay_fallbacks:
        reasons = ", ".join(f"{reason}={count}" for reason, count
                            in sorted(result.replay_fallbacks.items()))
        replay_note += f", {sum(result.replay_fallbacks.values())} simulated ({reasons})"
    robustness_note = ""
    if result.failures:
        robustness_note += f", {len(result.failures)} failed"
    if result.retries:
        robustness_note += f", {result.retries} retried"
    if result.resumed_skipped:
        robustness_note += f", {result.resumed_skipped} resume-skipped"
    print(f"\n{len(result)} scenario(s) in {result.wall_time_s:.2f}s "
          f"({result.cache_hits} cached, {result.cache_misses} executed"
          f"{replay_note}{robustness_note}, workers={args.workers}, "
          f"cache={cache_dir})")
    if result.failures:
        print("\n" + result.failure_summary(), file=sys.stderr)
        if any(f.reason in ("infeasible", "oom") for f in result.failures):
            print("hint: scenario(s) exceeded their --device-memory-gib "
                  "capacity; raise the capacity or turn on --swap",
                  file=sys.stderr)
        if args.strict or not result.results:
            return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "figure":
        return _cmd_figure(args.name)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
