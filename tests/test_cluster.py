"""Tests for the cluster layer: interconnects, allreduce cost models,
DeviceGroup, CollectiveEngine, and the DeviceGroup(n=1) equivalence."""

import numpy as np
import pytest

from repro.core.profiler import MemoryProfiler
from repro.data.datasets import build_dataset
from repro.data.loader import DataLoader
from repro.device import (
    ALLREDUCE_ALGORITHMS,
    ClusterSpec,
    CollectiveEngine,
    DeviceGroup,
    INTERCONNECT_PRESETS,
    InterconnectSpec,
    get_interconnect,
    naive_allreduce_time_ns,
    ring_allreduce_time_ns,
    small_test_device,
)
from repro.errors import ConfigurationError
from repro.models.registry import build_model
from repro.nn import SGD, CrossEntropyLoss
from repro.train import Trainer, TrainingRunConfig, run_training_session
from repro.train.session import build_device

MIB = 1024 * 1024


# -- allreduce cost models ------------------------------------------------------------


def test_ring_allreduce_formula_is_exact():
    # 2(N-1) steps of latency + chunk/bandwidth with chunk = S/N.
    nbytes, n, bw, lat = 64 * MIB, 4, 10e9, 5_000
    steps = 2 * (n - 1)
    expected = round(steps * (lat + 1e9 * (nbytes / n) / bw))
    assert ring_allreduce_time_ns(nbytes, n, bw, lat) == expected


def test_naive_allreduce_formula_is_exact():
    nbytes, n, bw, lat = 64 * MIB, 4, 10e9, 5_000
    steps = 2 * (n - 1)
    expected = round(steps * (lat + 1e9 * nbytes / bw))
    assert naive_allreduce_time_ns(nbytes, n, bw, lat) == expected


def test_allreduce_costs_zero_for_one_device_or_no_bytes():
    for model in ALLREDUCE_ALGORITHMS.values():
        assert model(64 * MIB, 1, 10e9, 5_000) == 0
        assert model(0, 8, 10e9, 5_000) == 0


def test_ring_beats_naive_at_every_cluster_size():
    # Ring pipelines S/N chunks; naive serializes the full buffer per step,
    # so ring is exactly N times cheaper at zero latency.
    for n in (2, 3, 4, 8):
        ring = ring_allreduce_time_ns(64 * MIB, n, 10e9, 0)
        naive = naive_allreduce_time_ns(64 * MIB, n, 10e9, 0)
        assert ring < naive
        assert naive == pytest.approx(n * ring, abs=n)


def test_bandwidth_term_scales_inversely():
    # With zero latency the time is purely bandwidth-bound: 2x the link
    # bandwidth must exactly halve the allreduce.
    slow = ring_allreduce_time_ns(128 * MIB, 4, 10e9, 0)
    fast = ring_allreduce_time_ns(128 * MIB, 4, 20e9, 0)
    assert slow == pytest.approx(2 * fast, abs=1)


def test_latency_term_dominates_tiny_messages():
    # With an (effectively) infinite link the cost is the per-step latency.
    lat = 7_000
    for n in (2, 4, 8):
        assert ring_allreduce_time_ns(8, n, 1e18, lat) == 2 * (n - 1) * lat
        assert naive_allreduce_time_ns(8, n, 1e18, lat) == 2 * (n - 1) * lat


def test_ring_allreduce_approaches_bandwidth_limit():
    # Ring moves 2(N-1)/N * S per link: the time must *grow* with N toward
    # the 2*S/B asymptote, never reach double it.
    times = [ring_allreduce_time_ns(256 * MIB, n, 10e9, 0) for n in (2, 4, 8, 16)]
    assert times == sorted(times)
    assert times[-1] < 2 * 1e9 * 256 * MIB / 10e9


# -- specs ----------------------------------------------------------------------------


def test_interconnect_presets_resolve_and_validate():
    for name in INTERCONNECT_PRESETS:
        spec = get_interconnect(name)
        assert spec.name == name
        assert spec.bandwidth > 0
    with pytest.raises(KeyError, match="unknown interconnect"):
        get_interconnect("token_ring")
    with pytest.raises(ConfigurationError):
        InterconnectSpec(name="bad", bandwidth=-1, latency_ns=0)


def test_cluster_spec_validates_and_costs():
    cluster = ClusterSpec(device=small_test_device(), n_devices=4,
                          interconnect=get_interconnect("pcie_gen3"))
    assert cluster.allreduce_time_ns(64 * MIB) == ring_allreduce_time_ns(
        64 * MIB, 4, 12e9, 10_000)
    naive = ClusterSpec(device=small_test_device(), n_devices=4,
                        allreduce_algorithm="naive")
    assert naive.allreduce_time_ns(64 * MIB) > cluster.allreduce_time_ns(64 * MIB)
    with pytest.raises(ConfigurationError):
        ClusterSpec(device=small_test_device(), n_devices=0)
    with pytest.raises(ConfigurationError):
        ClusterSpec(device=small_test_device(), allreduce_algorithm="quantum")


def test_cluster_spec_defaults_to_pcie_gen3():
    cluster = ClusterSpec(device=small_test_device(), n_devices=2)
    assert cluster.interconnect.name == "pcie_gen3"
    assert cluster.with_n_devices(8).n_devices == 8


# -- the collective engine ------------------------------------------------------------


def test_collective_engine_barriers_and_advances_all_clocks():
    group = DeviceGroup(ClusterSpec(device=small_test_device(), n_devices=3))
    group[0].clock.advance(1_000)
    group[1].clock.advance(5_000)  # the straggler defines the start
    record = group.collective.allreduce(MIB, tag="grads")
    assert record.start_ns == 5_000
    assert record.duration_ns == ring_allreduce_time_ns(MIB, 3, 12e9, 10_000)
    assert {device.clock.now_ns for device in group} == {record.end_ns}
    assert record.world_size == 3
    summary = group.collective.summary()
    assert summary["count"] == 1
    assert summary["total_bytes"] == MIB
    assert summary["interconnect"] == "pcie_gen3"


def test_collective_engine_is_free_for_one_replica():
    group = DeviceGroup.single(small_test_device())
    group.primary.clock.advance(123)
    record = group.collective.allreduce(16 * MIB)
    assert record.duration_ns == 0
    assert group.primary.clock.now_ns == 123


def test_device_group_synchronize_barriers_clocks():
    group = DeviceGroup(ClusterSpec(device=small_test_device(), n_devices=2))
    group[1].clock.advance(9_999)
    latest = group.synchronize()
    assert latest == 9_999
    assert group[0].clock.now_ns == 9_999


# -- DeviceGroup(n=1) equivalence -----------------------------------------------------


def _classic_single_device_trace(config):
    """The historical single-Device pipeline, reproduced piece by piece."""
    device = build_device(config)
    rng = np.random.default_rng(config.seed)
    profiler = MemoryProfiler(device)
    with profiler:
        model = build_model(config.model, device, rng=rng, **dict(config.model_kwargs))
        dataset = build_dataset(config.dataset, seed=config.seed,
                                **dict(config.dataset_kwargs))
        loader = DataLoader(dataset, batch_size=config.batch_size,
                            host_latency=config.host_latency)
        loss_fn = CrossEntropyLoss(device, name="loss")
        optimizer = SGD(model.parameters(), lr=config.learning_rate,
                        momentum=config.momentum)
        trainer = Trainer(model, loader, optimizer, loss_fn, device,
                          recorder=profiler)
        trainer.train(config.iterations)
    return profiler.trace(), trainer


def _normalized_events(trace):
    """Event dicts with block ids renamed to first-appearance ordinals.

    Block/segment identities come from process-global counters, so two runs
    in one process never share raw ids; the behavior streams are equivalent
    iff they agree after this order-preserving renaming.
    """
    renamed = {}
    events = []
    for event in trace.events:
        data = event.to_dict()
        data["block_id"] = renamed.setdefault(data["block_id"], len(renamed))
        data.pop("address", None)  # addresses shift with global segment ids
        events.append(data)
    return events


@pytest.mark.parametrize("execution_mode,batch_size,iterations", [
    ("eager", 16, 3),
    ("eager", 32, 2),
    ("virtual", 64, 4),
])
def test_device_group_of_one_reproduces_the_single_device_trace(
        execution_mode, batch_size, iterations):
    """Property: the data-parallel path with one replica is event-identical
    to the historical single-device Trainer pipeline."""
    config = TrainingRunConfig(
        model="mlp", model_kwargs={"hidden_dim": 32}, batch_size=batch_size,
        iterations=iterations, execution_mode=execution_mode, n_devices=1)
    session = run_training_session(config)
    classic_trace, classic_trainer = _classic_single_device_trace(config)

    assert _normalized_events(session.trace) == _normalized_events(classic_trace)
    assert ([mark.to_dict() for mark in session.trace.iteration_marks]
            == [mark.to_dict() for mark in classic_trace.iteration_marks])
    assert session.trace.end_ns == classic_trace.end_ns
    assert session.losses() == classic_trainer.losses()
    assert session.n_devices == 1
    assert session.collective is None


# -- multi-rank sweeps through the cache ----------------------------------------------


def test_multi_rank_sweep_smoke_through_the_cache(tmp_path):
    from repro.experiments.sweep import SweepGrid, SweepRunner

    grid = SweepGrid(models=("mlp",), model_kwargs={"hidden_dim": 32},
                     batch_sizes=(32,), iterations=(2,), n_devices=(1, 2, 4),
                     execution_mode="virtual")
    runner = SweepRunner(cache_dir=tmp_path / "sweeps")
    cold = runner.run(grid)
    assert cold.cache_misses == 3 and cold.cache_hits == 0
    warm = SweepRunner(cache_dir=tmp_path / "sweeps").run(grid)
    assert warm.cache_hits == 3 and warm.cache_misses == 0

    by_n = {result.scenario["n_devices"]: result for result in warm.results}
    assert set(by_n) == {1, 2, 4}
    # Per-device peak shrinks as the global batch is sharded.
    assert (by_n[1].peak_allocated_bytes > by_n[2].peak_allocated_bytes
            > by_n[4].peak_allocated_bytes)
    # The collective summary is cached alongside (None for one replica).
    assert by_n[1].collective is None
    assert by_n[2].collective["world_size"] == 2
    assert by_n[4].collective["total_time_ns"] > by_n[2].collective["total_time_ns"]
    # Cached and fresh rows agree byte for byte.
    assert [r.row() for r in warm.results] == [
        {**row.row(), "cached": True} for row in cold.results]
