"""Randomized property-style invariants for the swap planner and the allocator.

These complement ``test_property_invariants.py`` (whole-stack trace
invariants) with targeted properties of the two subtlest components:

* :class:`~repro.core.swap.SwapPlanner` — Eq.-1 consistency and conservative
  savings accounting;
* :class:`~repro.device.allocator.CachingAllocator` — no overlapping live
  blocks, byte conservation across alloc/free streams.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ati import AccessInterval, compute_interval_arrays
from repro.core.events import MemoryCategory, MemoryEventKind
from repro.core.swap import (
    BandwidthConfig,
    SwapPlanner,
    is_swappable,
    max_swap_bytes,
    swap_round_trip_ns,
    swappable_fraction,
    swappable_mask,
)
from repro.device import Device, small_test_device
from repro.units import KB, MIB

from tests.helpers import build_trace

BANDWIDTHS = BandwidthConfig.from_paper()


def make_interval(block_id, size, interval_ns, iteration=0):
    """A standalone ATI sample for planner-level tests."""
    return AccessInterval(
        block_id=block_id, size=size, category=MemoryCategory.ACTIVATION,
        tag=f"block{block_id}", interval_ns=interval_ns,
        start_event_id=2 * block_id, end_event_id=2 * block_id + 1,
        start_kind=MemoryEventKind.WRITE, end_kind=MemoryEventKind.READ,
        iteration=iteration,
    )


# -- Eq. 1 consistency ----------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(size=st.integers(min_value=0, max_value=1 << 34),
       interval_ns=st.integers(min_value=-10, max_value=10**12))
def test_is_swappable_consistent_with_max_swap_bytes(size, interval_ns):
    interval = make_interval(1, size, interval_ns)
    limit = max_swap_bytes(interval_ns, BANDWIDTHS)
    assert is_swappable(interval, BANDWIDTHS) == (size <= limit)
    if interval_ns <= 0:
        assert limit == 0.0
    else:
        # Eq. 1: shipping `limit` bytes out and back takes exactly the ATI.
        assert swap_round_trip_ns(limit, BANDWIDTHS) == pytest.approx(interval_ns, rel=1e-9)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=1, max_value=1 << 30),
                          st.integers(min_value=1, max_value=10**10)),
                min_size=1, max_size=40))
def test_vectorized_swappable_mask_matches_scalar_eq1(pairs):
    """swappable_mask/swappable_fraction agree with per-interval is_swappable."""
    us = 1_000
    events = []
    t = 0
    for block_id, (size, gap) in enumerate(pairs, start=1):
        events += [("malloc", t, block_id, size), ("write", t + us, block_id, size),
                   ("read", t + us + gap, block_id, size),
                   ("free", t + 2 * us + gap, block_id, size)]
        t += 4 * us + gap
    trace = build_trace(events)
    arrays = compute_interval_arrays(trace)
    assert len(arrays) == len(pairs)
    mask = swappable_mask(arrays, BANDWIDTHS)
    for i in range(len(arrays)):
        expected = int(arrays.size[i]) <= max_swap_bytes(int(arrays.interval_ns[i]),
                                                         BANDWIDTHS)
        assert bool(mask[i]) == expected
    assert swappable_fraction(arrays, BANDWIDTHS) == pytest.approx(float(np.mean(mask)))


# -- SwapPlanner invariants -----------------------------------------------------------


interval_lists = st.lists(
    st.tuples(st.integers(min_value=1, max_value=20),              # block id
              st.integers(min_value=1 * KB, max_value=1 << 31),    # size
              st.integers(min_value=0, max_value=2 * 10**9)),      # ATI (up to 2 s)
    min_size=0, max_size=60)


@settings(max_examples=100, deadline=None)
@given(intervals=interval_lists,
       allow_overhead_ns=st.sampled_from([0.0, 1e6, 1e9]))
def test_swap_plan_invariants(intervals, allow_overhead_ns):
    samples = [make_interval(block, size, ati) for block, size, ati in intervals]
    us = 1_000
    events = []
    for i, (block, size, _) in enumerate(intervals):
        events += [("malloc", i * us, block, size), ("free", (i + 1) * us, block, size)]
    trace = build_trace(events) if events else build_trace([("malloc", 0, 1, 1)])

    planner = SwapPlanner(bandwidths=BANDWIDTHS, allow_overhead_ns=allow_overhead_ns)
    plan = planner.plan(trace, samples)

    candidate_total = sum(c.savings_bytes for c in plan.candidates)
    selected_total = sum(c.savings_bytes for c in plan.selected)

    # Savings are conservative: bounded by the candidates and by the peak.
    assert 0 <= plan.savings_bytes <= plan.peak_bytes_before
    assert selected_total <= candidate_total
    assert plan.savings_bytes <= selected_total
    assert plan.estimated_peak_bytes_after >= 0

    # Candidates below the planner's size floor are never considered.
    assert all(c.interval.size >= planner.min_candidate_bytes for c in plan.candidates)

    # At most one selection per block.
    selected_blocks = [c.interval.block_id for c in plan.selected]
    assert len(selected_blocks) == len(set(selected_blocks))

    # Eq.-1 consistency: feasibility of every candidate matches is_swappable,
    # and the total overhead respects the planner's budget.
    for candidate in plan.candidates:
        assert candidate.feasible == is_swappable(candidate.interval, BANDWIDTHS)
    assert plan.total_overhead_ns <= allow_overhead_ns + 1e-6
    if allow_overhead_ns == 0.0:
        # (overhead == 0 admits the float edge where round-trip rounds to the ATI)
        assert all(c.feasible or c.overhead_ns == 0.0 for c in plan.selected)
        assert plan.total_overhead_ns == 0.0


@settings(max_examples=50, deadline=None)
@given(intervals=interval_lists)
def test_swap_plan_zero_overhead_selects_all_feasible_blocks(intervals):
    samples = [make_interval(block, size, ati) for block, size, ati in intervals]
    planner = SwapPlanner(bandwidths=BANDWIDTHS, allow_overhead_ns=0.0)
    plan = planner.plan(build_trace([("malloc", 0, 1, 1)]), samples)
    feasible_blocks = {c.interval.block_id for c in plan.candidates if c.feasible}
    selected_blocks = {c.interval.block_id for c in plan.selected}
    # Every feasible block is picked; anything extra must be zero-overhead.
    assert feasible_blocks <= selected_blocks
    assert all(c.feasible or c.overhead_ns == 0.0 for c in plan.selected)


# -- caching allocator invariants -----------------------------------------------------


def assert_no_overlapping_live_blocks(device):
    """No two live blocks may share device bytes."""
    spans = sorted((block.address, block.address + block.size)
                   for block in device.allocator.live_blocks())
    for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
        assert end_a <= start_b, "live blocks overlap"


allocation_programs = st.lists(
    st.tuples(st.integers(min_value=1, max_value=4 * MIB),  # request size
              st.integers(min_value=0, max_value=3)),       # frees before this alloc
    min_size=1, max_size=80)


@settings(max_examples=40, deadline=None)
@given(program=allocation_programs)
def test_caching_allocator_conserves_bytes_and_never_overlaps(program):
    device = Device(small_test_device(1 << 30), execution_mode="virtual")
    live = []
    allocated_total = 0
    for size, frees in program:
        for _ in range(min(frees, len(live))):
            block = live.pop(0)
            allocated_total -= block.size
            device.free(block)
        block = device.allocate(size)
        assert block.size >= size, "allocator returned an undersized block"
        live.append(block)
        allocated_total += block.size

        # Conservation: the allocator's notion of allocated bytes equals the
        # sum of the blocks it has handed out and not yet been given back.
        assert device.allocated_bytes == allocated_total
        assert device.allocated_bytes == sum(b.size for b in device.allocator.live_blocks())
        assert device.reserved_bytes >= device.allocated_bytes
        assert_no_overlapping_live_blocks(device)
        device.allocator.check_invariants()

    for block in live:
        device.free(block)
    assert device.allocated_bytes == 0
    # Every reserved segment is fully reusable once everything is freed.
    assert all(segment.is_fully_free() for segment in device.allocator.segments())
    # And the cache can be dropped completely: freed bytes were conserved.
    reserved_before = device.reserved_bytes
    assert device.allocator.empty_cache() == reserved_before
    assert device.reserved_bytes == 0
