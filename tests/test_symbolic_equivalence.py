"""Equivalence suite: symbolic execution is event-identical to eager.

The whole point of symbolic mode is that the trace/timing layer is a pure
function of shapes, never of tensor values — so a symbolic run must produce
*exactly* the events an eager run of the same configuration produces:
same kinds, sizes, categories, addresses, iteration attribution, simulated
timestamps, tags/ops, lifetimes and device ranks.  These tests pin that
equivalence across models (dense MLP, conv AlexNet, residual ResNet),
replica counts and training dtypes, so any kernel that accidentally makes
memory behavior value-dependent (or mode-dependent) fails tier-1
immediately.

Block ids come from a process-global counter (they are *stable within* a
session but not across sessions), so the comparison normalizes them to
first-appearance order before comparing streams.
"""

from __future__ import annotations

import pytest

from repro.errors import MaterializationError
from repro.train.session import TrainingRunConfig, run_training_session


def _normalized_block_ids(values):
    """Remap a block-id sequence to dense first-appearance order."""
    mapping = {}
    out = []
    for value in values:
        if value not in mapping:
            mapping[value] = len(mapping)
        out.append(mapping[value])
    return out


def event_stream(trace):
    """The full per-event comparison tuples, with block ids normalized."""
    cols = trace.columns()
    tags, ops = trace.event_strings()
    block_ids = _normalized_block_ids(cols.block_id.tolist())
    return list(zip(
        cols.kind_code.tolist(),
        cols.timestamp_ns.tolist(),
        block_ids,
        cols.address.tolist(),
        cols.size.tolist(),
        cols.category_code.tolist(),
        cols.iteration.tolist(),
        cols.device_rank.tolist(),
        tags,
        ops,
    ))


def lifetime_stream(trace):
    """Per-lifetime comparison tuples, with block ids normalized."""
    block_ids = _normalized_block_ids(
        [lifetime.block_id for lifetime in trace.lifetimes])
    return [
        (bid, lt.address, lt.size, lt.category, lt.tag, lt.malloc_ns, lt.free_ns,
         lt.iteration, lt.access_count, lt.device_rank)
        for bid, lt in zip(block_ids, trace.lifetimes)
    ]


def run_pair(model, model_kwargs, batch_size, n_devices, dtype, iterations=2,
             dataset="two_cluster"):
    """Run the same configuration eagerly and symbolically."""
    base = dict(model=model, model_kwargs=model_kwargs, dataset=dataset,
                batch_size=batch_size, iterations=iterations,
                n_devices=n_devices, dtype=dtype, seed=7)
    eager = run_training_session(TrainingRunConfig(execution_mode="eager", **base))
    symbolic = run_training_session(TrainingRunConfig(execution_mode="symbolic", **base))
    return eager, symbolic


CASES = [
    # (model, model_kwargs, dataset, batch_size, n_devices, dtype)
    ("mlp", {"hidden_dim": 64}, "two_cluster", 16, 1, "float32"),
    ("mlp", {"hidden_dim": 64}, "two_cluster", 16, 2, "float32"),
    ("mlp", {"hidden_dim": 64}, "two_cluster", 16, 1, "float16"),
    ("mlp", {"hidden_dim": 64}, "two_cluster", 16, 2, "float16"),
    ("alexnet", {"input_size": 32, "num_classes": 10}, "cifar10", 4, 1, "float32"),
    ("alexnet", {"input_size": 32, "num_classes": 10}, "cifar10", 4, 2, "float16"),
    ("resnet18", {"input_size": 32, "num_classes": 10}, "cifar10", 4, 1, "float32"),
    ("resnet18", {"input_size": 32, "num_classes": 10}, "cifar10", 4, 2, "float16"),
    ("vgg11", {"input_size": 32, "num_classes": 10}, "cifar10", 2, 1, "float32"),
    ("inception_small", {"input_size": 32, "num_classes": 10}, "cifar10", 2, 1, "float32"),
    ("mlp", {"hidden_dim": 64}, "two_cluster", 16, 4, "float32"),
]


@pytest.mark.parametrize("model,model_kwargs,dataset,batch_size,n_devices,dtype", CASES)
def test_symbolic_trace_is_event_identical_to_eager(model, model_kwargs, dataset,
                                                    batch_size, n_devices, dtype):
    eager, symbolic = run_pair(model, model_kwargs, batch_size, n_devices, dtype,
                               dataset=dataset)

    assert event_stream(symbolic.trace) == event_stream(eager.trace)
    assert lifetime_stream(symbolic.trace) == lifetime_stream(eager.trace)
    assert ([mark.to_dict() for mark in symbolic.trace.iteration_marks]
            == [mark.to_dict() for mark in eager.trace.iteration_marks])
    assert symbolic.trace.duration_ns == eager.trace.duration_ns

    # Timing and footprint reductions agree too.
    assert symbolic.peak_allocated_bytes == eager.peak_allocated_bytes
    assert symbolic.peak_reserved_bytes == eager.peak_reserved_bytes
    assert symbolic.parameter_bytes == eager.parameter_bytes
    assert ([stats.duration_ns for stats in symbolic.iteration_stats]
            == [stats.duration_ns for stats in eager.iteration_stats])


def test_symbolic_columns_match_eager_columns():
    """The columnar views agree array-for-array (not just tuple-wise)."""
    import numpy as np

    eager, symbolic = run_pair("mlp", {"hidden_dim": 32}, 8, 1, "float32")
    eager_cols = eager.trace.columns()
    symbolic_cols = symbolic.trace.columns()
    for name in ("kind_code", "timestamp_ns", "size", "category_code",
                 "iteration", "device_rank", "address", "event_id"):
        np.testing.assert_array_equal(getattr(symbolic_cols, name),
                                      getattr(eager_cols, name), err_msg=name)


def test_virtual_alias_matches_symbolic():
    """The legacy mode name records the same stream as its new name."""
    base = dict(model="mlp", model_kwargs={"hidden_dim": 32}, batch_size=8,
                iterations=2, seed=3)
    symbolic = run_training_session(
        TrainingRunConfig(execution_mode="symbolic", **base))
    virtual = run_training_session(
        TrainingRunConfig(execution_mode="virtual", **base))
    assert event_stream(virtual.trace) == event_stream(symbolic.trace)


def test_unified_swap_session_is_event_identical_to_eager():
    """A ``--swap unified`` session is mode-invariant end to end."""
    base = dict(model="mlp", model_kwargs={"hidden_dim": 64},
                dataset="two_cluster", batch_size=16, iterations=3, seed=7,
                swap="unified")
    eager = run_training_session(
        TrainingRunConfig(execution_mode="eager", **base))
    symbolic = run_training_session(
        TrainingRunConfig(execution_mode="symbolic", **base))
    assert event_stream(symbolic.trace) == event_stream(eager.trace)
    assert lifetime_stream(symbolic.trace) == lifetime_stream(eager.trace)
    assert symbolic.swap_execution == eager.swap_execution


def test_unified_rematerialization_is_event_identical_to_eager():
    """Where the unified plan actually swaps *and* recomputes, both modes
    emit the same decision stream (block ids come from a process-global
    counter, so the comparison normalizes them)."""
    from repro.swap.policies import UnifiedExecutionPolicy
    from tests.test_swap_execution import run_manual_policy

    settings = dict(model="mlp", dataset="two_cluster", batch_size=512,
                    iterations=5,
                    model_kwargs={"hidden_dim": 1024, "num_hidden_layers": 3},
                    seed=7)

    def run(mode):
        return run_manual_policy(
            UnifiedExecutionPolicy(min_candidate_bytes=256 * 1024),
            execution_mode=mode, **settings)

    def normalized_summary(summary):
        data = summary.to_dict()
        predicted = dict(data["predicted"])
        predicted["decisions"] = [
            {key: value for key, value in decision.items() if key != "block_id"}
            for decision in predicted["decisions"]]
        data["predicted"] = predicted
        return data

    symbolic_trace, symbolic_summary = run("symbolic")
    eager_trace, eager_summary = run("eager")
    assert symbolic_summary.swap_out_count > 0
    assert any(d["mechanism"] == "recompute"
               for d in symbolic_summary.predicted["decisions"])
    assert event_stream(symbolic_trace) == event_stream(eager_trace)
    assert lifetime_stream(symbolic_trace) == lifetime_stream(eager_trace)
    assert (normalized_summary(symbolic_summary)
            == normalized_summary(eager_summary))


def test_symbolic_mode_has_no_values_but_eager_does():
    eager, symbolic = run_pair("mlp", {"hidden_dim": 32}, 8, 1, "float32",
                               iterations=1)
    assert all(loss is not None for loss in eager.losses())
    assert all(loss is None for loss in symbolic.losses())


def test_symbolic_storage_refuses_numeric_readout():
    from repro.device import Device, small_test_device
    from repro.tensor import randn

    device = Device(small_test_device(), execution_mode="symbolic")
    assert device.is_symbolic and not device.is_eager
    tensor = randn(device, (4, 4))
    with pytest.raises(MaterializationError):
        tensor.numpy()
