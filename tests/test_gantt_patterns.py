"""Tests for Gantt-chart extraction and iterative-pattern detection."""

import pytest

from repro.core.events import MemoryCategory
from repro.core.gantt import address_gaps, build_gantt_chart
from repro.core.patterns import (
    behaviors_per_iteration,
    detect_iterative_pattern,
    iteration_durations_ns,
    iteration_signature,
    jaccard_similarity,
    sequence_similarity,
)

from tests.helpers import build_trace


def test_gantt_builds_one_rectangle_per_lifetime(simple_trace):
    chart = build_gantt_chart(simple_trace)
    assert len(chart) == 3
    block2 = next(rect for rect in chart.rectangles if rect.block_id == 2)
    assert block2.start_ns == 2_000
    assert block2.end_ns == 15_000
    assert block2.duration_ns == 13_000
    assert block2.size == 4096


def test_gantt_closes_live_blocks_at_trace_end(simple_trace):
    chart = build_gantt_chart(simple_trace)
    block1 = next(rect for rect in chart.rectangles if rect.block_id == 1)
    assert block1.end_ns == simple_trace.end_ns    # parameters live until the end


def test_gantt_iteration_filter(simple_trace):
    chart = build_gantt_chart(simple_trace, max_iterations=1)
    assert all(rect.iteration < 1 for rect in chart.rectangles)
    assert len(chart.iteration_bounds) == 1


def test_gantt_concurrency_and_overlap(simple_trace):
    chart = build_gantt_chart(simple_trace)
    assert chart.max_concurrent_bytes() == 1024 + 4096
    first, second = sorted(chart.rectangles, key=lambda rect: rect.start_ns)[:2]
    assert first.overlaps_time(second)
    in_iter0 = chart.rectangles_in_iteration(0)
    assert {rect.block_id for rect in in_iter0} == {1, 2}
    overlapping = chart.rectangles_overlapping(0, 5_000)
    assert {rect.block_id for rect in overlapping} == {1, 2}


def test_gantt_lifetime_stats_and_dict(simple_trace):
    chart = build_gantt_chart(simple_trace)
    stats = chart.lifetime_stats()
    assert stats["count"] == 3
    assert stats["max_size"] == 4096
    assert chart.rectangles[0].to_dict()["block_id"] in {1, 2, 3}


def test_gantt_address_gaps(simple_trace):
    chart = build_gantt_chart(simple_trace)
    gaps = address_gaps(chart, at_time_ns=5_000)
    # Blocks 1 (at 0x1000, 1 KiB) and 2 (at 0x2000) are both live: one gap between them.
    assert len(gaps) == 1
    assert gaps[0][1] == 0x1000 - 1024


def test_sequence_and_jaccard_similarity_basics():
    a = (("write", 10, "activation"), ("read", 10, "activation"))
    b = (("write", 10, "activation"), ("read", 10, "activation"))
    c = (("write", 99, "parameter"),)
    assert sequence_similarity(a, b) == 1.0
    assert jaccard_similarity(a, b) == 1.0
    assert sequence_similarity(a, c) < 0.5
    assert jaccard_similarity(a, c) == 0.0
    assert sequence_similarity((), ()) == 1.0
    assert jaccard_similarity((), ()) == 1.0


def make_periodic_trace(num_iterations=4, perturb_last=False):
    """Build a trace whose iterations repeat the same three behaviors."""
    events = []
    marks = []
    us = 1_000
    for iteration in range(num_iterations):
        base = iteration * 100 * us
        size = 2048 if not (perturb_last and iteration == num_iterations - 1) else 9999
        events += [
            ("malloc", base + 1 * us, 10 + iteration, size, MemoryCategory.ACTIVATION, iteration),
            ("write", base + 2 * us, 10 + iteration, size, MemoryCategory.ACTIVATION, iteration),
            ("read", base + 3 * us, 10 + iteration, size, MemoryCategory.ACTIVATION, iteration),
            ("free", base + 4 * us, 10 + iteration, size, MemoryCategory.ACTIVATION, iteration),
        ]
        marks.append((base, base + 50 * us))
    return build_trace(events, iteration_marks=marks)


def test_detect_iterative_pattern_on_periodic_trace():
    report = detect_iterative_pattern(make_periodic_trace(), skip_warmup=1)
    assert report.is_iterative
    assert report.mean_sequence_similarity == pytest.approx(1.0)
    assert report.mean_jaccard_similarity == pytest.approx(1.0)
    assert report.summary()["num_iterations"] == 4


def test_detect_iterative_pattern_flags_divergence():
    report = detect_iterative_pattern(make_periodic_trace(perturb_last=True), skip_warmup=1)
    assert report.mean_sequence_similarity < 1.0


def test_iteration_signature_contents(simple_trace):
    signature = iteration_signature(simple_trace, 0)
    assert signature.iteration == 0
    assert signature.event_count == 7
    assert signature.total_bytes_touched > 0
    assert signature.multiset()[("read", 4096, "activation")] == 1


def test_iteration_durations_and_behavior_counts(simple_trace):
    durations = iteration_durations_ns(simple_trace)
    assert durations == [20_000, 20_000]
    counts = behaviors_per_iteration(simple_trace)
    assert counts == {0: 7, 1: 5}


def test_pattern_detection_on_real_training_trace(small_mlp_session):
    report = detect_iterative_pattern(small_mlp_session.trace, skip_warmup=1)
    assert report.is_iterative
    assert report.mean_sequence_similarity > 0.95
