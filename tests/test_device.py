"""Tests for the Device facade."""

import pytest

from repro.core.events import MemoryCategory
from repro.device import CountingListener, Device, small_test_device
from repro.device.timing import KernelCost
from repro.errors import ConfigurationError
from repro.units import MIB


def test_device_defaults_to_titan_x_and_caching_allocator():
    device = Device()
    assert "Titan X" in device.spec.name
    assert device.allocator.name == "caching"
    assert device.is_eager


def test_device_rejects_unknown_execution_mode():
    with pytest.raises(ConfigurationError):
        Device(small_test_device(), execution_mode="magic")


def test_allocate_and_free_update_stats(test_device):
    block = test_device.allocate(1 * MIB, category=MemoryCategory.ACTIVATION, tag="a")
    assert test_device.allocated_bytes >= 1 * MIB
    test_device.free(block)
    assert test_device.allocated_bytes == 0
    assert test_device.peak_allocated_bytes >= 1 * MIB


def test_listeners_observe_allocations_and_accesses(test_device):
    listener = CountingListener()
    test_device.add_listener(listener)
    block = test_device.allocate(1024)
    test_device.notify_write(block, 1024, op="init")
    test_device.notify_read(block, 1024, op="consume")
    test_device.free(block)
    assert (listener.mallocs, listener.writes, listener.reads, listener.frees) == (1, 1, 1, 1)
    test_device.remove_listener(listener)
    test_device.allocate(1024)
    assert listener.mallocs == 1


def test_run_kernel_advances_clock_and_counts(test_device):
    before = test_device.clock.now_ns
    duration = test_device.run_kernel(KernelCost(flops=1e6, name="k"))
    assert duration > 0
    assert test_device.clock.now_ns == before + duration
    assert test_device.kernel_count == 1


def test_host_pause_advances_clock(test_device):
    test_device.host_pause(1_000_000)
    assert test_device.clock.now_ns >= 1_000_000
    with pytest.raises(ConfigurationError):
        test_device.host_pause(-1)


def test_copies_advance_clock(test_device):
    h2d = test_device.copy_host_to_device(10 * MIB)
    d2h = test_device.copy_device_to_host(10 * MIB)
    assert h2d > 0
    assert d2h > 0


def test_memory_stats_and_snapshot(test_device):
    test_device.allocate(1024, tag="x")
    stats = test_device.memory_stats()
    assert stats["total_alloc_count"] == 1
    snapshot = test_device.memory_snapshot()
    assert snapshot and snapshot[0]["blocks"]


def test_synchronize_drains_streams(test_device):
    test_device.compute_stream.schedule(1_000)
    now = test_device.synchronize()
    assert now >= 1_000


def test_virtual_device_is_not_eager(virtual_device):
    assert not virtual_device.is_eager
