"""Tests for real capacity pressure: the executor's capacity governor.

``--device-memory-gib`` used to be a label; now it is enforced.  With the
swap engine off the allocator itself is shrunk and an allocation that does
not fit raises a raw ``OutOfMemoryError``.  With any execution policy on,
the executor governs the bound instead:

* a scenario whose unconstrained peak *exceeds* the capacity still
  completes — forced LRU evictions (counted as ``pressure_evictions`` with
  their ``pressure_stall_ns``) keep the measured resident peak at or below
  the capacity for the whole run, warm-up included;
* tightening the capacity costs monotonically more stall;
* when even evicting every resident block cannot fit the working set, the
  structured :class:`~repro.errors.InfeasibleScenarioError` is raised up
  front — never a raw OOM — carrying ``requested``/``resident``/
  ``evictable``/``capacity`` for the feasibility report;
* the sweep axis (``device_memory_capacities``), the scenario payload and
  the summary-row columns carry the capacity end to end.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.events import MemoryEventKind
from repro.errors import (
    DeviceError,
    InfeasibleScenarioError,
    OutOfMemoryError,
)
from repro.experiments.sweep import SweepGrid, run_scenario
from repro.train.session import TrainingRunConfig, run_training_session
from repro.units import GIB, MIB


#: A workload whose unconstrained resident peak is well above 96 MiB, so a
#: 64 MiB capacity exercises the governor without being infeasible.
PRESSURE = dict(
    model="mlp", dataset="two_cluster", batch_size=512, iterations=5,
    execution_mode="symbolic",
    model_kwargs={"hidden_dim": 2048, "num_hidden_layers": 4},
)


def run_capped(capacity, swap="unified", **overrides):
    config = TrainingRunConfig(**{**PRESSURE, **overrides, "swap": swap,
                                  "device_memory_capacity": capacity})
    return run_training_session(config)


# -- graceful degradation under pressure ----------------------------------------------


def test_over_capacity_scenario_completes_within_capacity():
    capacity = 64 * MIB
    uncapped = run_capped(None)
    assert uncapped.swap_execution["peak_resident_bytes"] > capacity
    result = run_capped(capacity)
    summary = result.swap_execution
    assert summary["capacity_bytes"] == capacity
    assert summary["peak_resident_bytes"] <= capacity
    assert summary["pressure_evictions"] > 0
    assert len(result.iteration_stats) == PRESSURE["iterations"]


def test_pressure_evictions_emit_stall_and_swap_events():
    result = run_capped(64 * MIB)
    summary = result.swap_execution
    assert summary["pressure_stall_ns"] > 0
    assert summary["pressure_stall_ns"] <= summary["stall_ns_total"]
    trace = result.trace
    outs = [e for e in trace.events if e.kind is MemoryEventKind.SWAP_OUT]
    ins = [e for e in trace.events if e.kind is MemoryEventKind.SWAP_IN]
    assert outs and len(outs) == len(ins)
    assert {e.op for e in ins} <= {"demand", "prefetch", "discard", "shutdown"}
    _, resident = trace.resident_bytes_series()
    assert int(resident.min()) >= 0


def test_pressure_stalls_lengthen_iterations():
    free_run = run_capped(None)
    capped = run_capped(64 * MIB)
    assert (sum(s.duration_ns for s in capped.iteration_stats)
            > sum(s.duration_ns for s in free_run.iteration_stats))


def test_tighter_capacity_costs_more_stall():
    tight = run_capped(48 * MIB).swap_execution
    loose = run_capped(96 * MIB).swap_execution
    assert tight["peak_resident_bytes"] <= 48 * MIB
    assert loose["peak_resident_bytes"] <= 96 * MIB
    assert tight["pressure_stall_ns"] >= loose["pressure_stall_ns"]


def test_capacity_governor_works_under_every_execution_policy():
    capacity = 96 * MIB
    for swap in ("planner", "swap_advisor", "zero_offload", "lru", "unified"):
        summary = run_capped(capacity, swap=swap).swap_execution
        assert summary["peak_resident_bytes"] <= capacity, swap
        assert summary["capacity_bytes"] == capacity, swap


# -- structured infeasibility ----------------------------------------------------------


def test_infeasible_capacity_raises_structured_error():
    with pytest.raises(InfeasibleScenarioError) as excinfo:
        run_capped(4 * MIB)
    error = excinfo.value
    assert error.capacity == 4 * MIB
    assert error.requested > 0
    assert error.evictable >= 0
    assert error.requested + max(0, error.resident - error.evictable) > error.capacity
    assert "infeasible" in str(error)
    assert not isinstance(error, OutOfMemoryError)


def test_infeasible_error_is_a_device_error_but_not_an_oom():
    assert issubclass(InfeasibleScenarioError, DeviceError)
    assert not issubclass(InfeasibleScenarioError, OutOfMemoryError)


def test_infeasible_error_pickles_for_sweep_workers():
    error = InfeasibleScenarioError(requested=10, resident=20, evictable=5,
                                    capacity=16)
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, InfeasibleScenarioError)
    assert (clone.requested, clone.resident, clone.evictable, clone.capacity) \
        == (10, 20, 5, 16)


def test_swap_off_capacity_still_raises_raw_oom():
    """Without the engine the capacity stays an allocator limit: the failure
    is the historical raw OOM, not the structured infeasibility."""
    with pytest.raises(OutOfMemoryError):
        run_capped(4 * MIB, swap="off")


# -- sweep / CLI integration -----------------------------------------------------------


def test_capacity_is_a_sweep_axis():
    grid = SweepGrid(models=("mlp",), batch_sizes=(16,),
                     device_memory_capacities=(None, 1 * GIB))
    scenarios = grid.expand()
    assert grid.size() == len(scenarios) == 2
    capacities = {s.config.device_memory_capacity for s in scenarios}
    assert capacities == {None, 1 * GIB}
    assert len({s.key() for s in scenarios}) == 2   # part of the cache identity
    described = [s.describe() for s in scenarios]
    assert any("cap=" in text for text in described)


def test_scenario_payload_and_row_carry_capacity_columns():
    grid = SweepGrid(models=("mlp",), batch_sizes=(512,), iterations=(5,),
                     swaps=("unified",), model_kwargs=PRESSURE["model_kwargs"],
                     device_memory_capacities=(64 * MIB,))
    result = run_scenario(grid.expand()[0])
    assert result.scenario["device_memory_capacity"] == 64 * MIB
    summary = result.swap_execution
    assert summary["pressure_evictions"] > 0
    row = result.row()
    assert row["pressure_stall_ms"] > 0
    assert row["peak_resident_mib"] <= 64
    assert row["recompute_ms"] >= 0


def test_cli_device_memory_gib_is_a_csv_axis(capsys):
    from repro.cli import main

    assert main(["sweep", "--models", "mlp", "--batch-sizes", "16",
                 "--device-memory-gib", "0.5,1", "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "2 scenarios" in out or "cap=" in out


def test_cli_reports_infeasible_capacity_without_a_traceback(capsys, tmp_path):
    """An over-tight capacity surfaces as a one-line CLI error (exit 1), not
    a raw worker traceback."""
    from repro.cli import main

    code = main(["sweep", "--models", "mlp", "--batch-sizes", "512",
                 "--iterations", "5", "--hidden-dim", "2048",
                 "--num-layers", "4", "--swap", "off",
                 "--device-memory-gib", "0.0625",
                 "--cache-dir", str(tmp_path)])
    assert code == 1
    captured = capsys.readouterr()
    assert "--device-memory-gib" in captured.err
    assert "Traceback" not in captured.err


def test_cli_rejects_malformed_device_memory_gib(capsys):
    from repro.cli import main

    assert main(["sweep", "--models", "mlp", "--batch-sizes", "16",
                 "--device-memory-gib", "lots", "--dry-run"]) == 2
