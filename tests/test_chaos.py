"""Chaos suite: deterministic fault injection against the sweep engine.

The fault-tolerance contract under test (see ``docs/robustness.md``):

* transient failures (worker crashes, timeouts, injected faults) are retried
  under a per-scenario budget and the faulty run **converges bit-identically**
  to the fault-free run once every fault's budget is spent;
* deterministic failures (infeasible capacity, OOM, config errors) are
  recorded exactly once, never retried, and skipped on ``--resume``;
* an interrupted sweep's journal lets a resumed run re-run zero completed
  scenarios;
* corrupt cache/template artifacts are quarantined (moved aside and tallied),
  never silently recomputed over.
"""

import json
import pickle

import pytest

from repro.errors import (
    ConfigurationError,
    InfeasibleScenarioError,
    InjectedFaultError,
    OutOfMemoryError,
    ReproError,
    ScenarioTimeoutError,
    SweepFaultError,
)
from repro.experiments.faults import (
    CRASH_EXIT_CODE,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)
from repro.experiments.journal import JOURNALS_DIR, RunJournal, run_id_for_keys
from repro.experiments.sweep import (
    RESULT_SCHEMA_VERSION,
    FailureRecord,
    SweepGrid,
    SweepRunner,
    classify_failure,
)


def tiny_grid(**overrides):
    """A fast virtual-mode grid (mirrors the helper in test_sweep.py)."""
    settings = dict(
        models=("mlp",),
        batch_sizes=(16, 32),
        iterations=(1,),
        allocators=("caching",),
        model_kwargs={"hidden_dim": 32},
        dataset="two_cluster",
        execution_mode="virtual",
    )
    settings.update(overrides)
    return SweepGrid(**settings)


def infeasible_grid():
    """One scenario whose capacity can never fit (raw OOM with swap off)."""
    return tiny_grid(batch_sizes=(16,), swaps=("lru",),
                     device_memory_capacities=(1,))


def comparable(sweep):
    """Serialized results minus the only legitimately varying field."""
    rows = []
    for result in sweep.results:
        data = result.to_dict()
        data.pop("wall_time_s")
        rows.append(data)
    return rows


# -- fault-plan construction ----------------------------------------------------------


def test_fault_spec_rejects_unknown_kind():
    with pytest.raises(ConfigurationError, match="unknown fault kind"):
        FaultSpec(kind="meteor", key="abc")


def test_fault_plan_json_round_trip(tmp_path):
    plan = FaultPlan(faults=[FaultSpec(kind="crash", key="k1"),
                             FaultSpec(kind="slow", key="k2", times=3,
                                       delay_s=0.5)], seed=9)
    path = plan.save(tmp_path / "plan.json")
    loaded = FaultPlan.load(path)
    assert loaded.seed == 9
    assert [f.to_dict() for f in loaded.faults] == [f.to_dict() for f in plan.faults]


def test_fault_plan_from_env(tmp_path, monkeypatch):
    from repro.experiments.faults import FAULT_PLAN_ENV

    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    assert FaultPlan.from_env() is None
    path = FaultPlan(faults=[FaultSpec(kind="error", key="k")]).save(
        tmp_path / "plan.json")
    monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
    assert len(FaultPlan.from_env().faults) == 1


def test_seeded_plan_is_deterministic():
    keys = [f"key-{i:04d}" for i in range(50)]
    first = FaultPlan.seeded(11, keys)
    second = FaultPlan.seeded(11, keys)
    assert first.to_dict() == second.to_dict()
    assert first.faults  # rate=0.34 over 50 keys practically always fires
    different = FaultPlan.seeded(12, keys)
    assert first.to_dict() != different.to_dict()
    assert all(f.kind in FAULT_KINDS for f in first.faults)


def test_should_fire_respects_attempt_budget():
    plan = FaultPlan(faults=[FaultSpec(kind="error", key="k", times=2)])
    assert plan.should_fire("error", "k", 0) is not None
    assert plan.should_fire("error", "k", 1) is not None
    assert plan.should_fire("error", "k", 2) is None  # budget spent
    assert plan.should_fire("error", "other", 0) is None
    assert plan.should_fire("crash", "k", 0) is None


def test_fire_execution_raises_injected_error_in_process():
    plan = FaultPlan(faults=[FaultSpec(kind="error", key="k")])
    with pytest.raises(InjectedFaultError) as caught:
        plan.fire_execution("k", 0, in_worker=False)
    assert caught.value.key == "k" and caught.value.attempt == 0
    plan.fire_execution("k", 1, in_worker=False)  # budget spent: no-op


def test_corrupt_artifact_fires_at_most_times(tmp_path):
    plan = FaultPlan(faults=[FaultSpec(kind="cache_corrupt", key="k", times=1)])
    target = tmp_path / "entry.json"
    target.write_text("{}")
    assert plan.corrupt_artifact("cache_corrupt", "k", target) is True
    assert b"corrupted" in target.read_bytes()
    target.write_text("{}")
    assert plan.corrupt_artifact("cache_corrupt", "k", target) is False
    assert target.read_text() == "{}"


# -- failure taxonomy -----------------------------------------------------------------


def test_classify_failure_taxonomy():
    from concurrent.futures.process import BrokenProcessPool

    assert classify_failure(BrokenProcessPool("x")) == ("worker_crash", "transient")
    assert classify_failure(ScenarioTimeoutError("k", 2.0, 1.0)) == ("timeout", "transient")
    assert classify_failure(InjectedFaultError("k")) == ("injected_fault", "transient")
    assert classify_failure(SweepFaultError("x")) == ("fault", "transient")
    assert classify_failure(OSError("disk")) == ("io_error", "transient")
    assert classify_failure(InfeasibleScenarioError(4, 3, 2, 1)) == ("infeasible", "deterministic")
    assert classify_failure(OutOfMemoryError(4, 3, 2, 1)) == ("oom", "deterministic")
    assert classify_failure(ConfigurationError("x")) == ("config", "deterministic")
    assert classify_failure(ValueError("x")) == ("error", "deterministic")


def test_new_error_classes_pickle_with_fields_intact():
    timeout = pickle.loads(pickle.dumps(ScenarioTimeoutError("k" * 64, 2.5, 1.0)))
    assert timeout.elapsed_s == 2.5 and timeout.timeout_s == 1.0
    injected = pickle.loads(pickle.dumps(InjectedFaultError("key", 3, kind="crash")))
    assert injected.key == "key" and injected.attempt == 3 and injected.kind == "crash"


# -- chaos equivalence: the headline pin ----------------------------------------------


def test_serial_chaos_run_converges_to_fault_free_results(tmp_path):
    """Injected faults + a corrupted cache entry converge bit-identically."""
    scenarios = tiny_grid().expand()
    keys = [s.key() for s in scenarios]
    clean = SweepRunner(cache_dir=tmp_path / "clean").run(scenarios)

    plan = FaultPlan(faults=[FaultSpec(kind="error", key=keys[0], times=2),
                             FaultSpec(kind="slow", key=keys[1], times=1,
                                       delay_s=0.01),
                             FaultSpec(kind="cache_corrupt", key=keys[1])])
    runner = SweepRunner(cache_dir=tmp_path / "chaos", retries=3,
                         backoff_s=0.001, strict=False, fault_plan=plan)
    faulty = runner.run(scenarios)
    assert comparable(faulty) == comparable(clean)
    assert faulty.failures == []
    assert faulty.retries == 2  # exactly the injected-error budget

    # The corrupted cache entry is quarantined (and recomputed) next run.
    second = runner.run(scenarios)
    assert comparable(second) == comparable(clean)
    assert second.quarantined.get("cache_corrupt") == 1
    assert (tmp_path / "chaos" / "quarantine").is_dir()


def test_pool_chaos_worker_crash_and_timeout_converge(tmp_path):
    """A killed worker and an over-deadline scenario both retry to identical
    results on a rebuilt pool."""
    scenarios = tiny_grid().expand()
    keys = [s.key() for s in scenarios]
    clean = SweepRunner(cache_dir=tmp_path / "clean").run(scenarios)

    plan = FaultPlan(faults=[FaultSpec(kind="crash", key=keys[0], times=1),
                             FaultSpec(kind="slow", key=keys[1], times=1,
                                       delay_s=30.0)])
    with SweepRunner(cache_dir=tmp_path / "chaos", workers=2, retries=3,
                     backoff_s=0.001, timeout_s=3.0, strict=False,
                     fault_plan=plan) as runner:
        faulty = runner.run(scenarios)
    assert comparable(faulty) == comparable(clean)
    assert faulty.failures == []
    assert faulty.retries >= 2  # the crash and the timeout each retried


def test_exhausted_retry_budget_surfaces_failure_record(tmp_path):
    scenarios = tiny_grid(batch_sizes=(16,)).expand()
    key = scenarios[0].key()
    plan = FaultPlan(faults=[FaultSpec(kind="error", key=key, times=10)])
    result = SweepRunner(cache_dir=tmp_path, retries=2, backoff_s=0.0,
                         strict=False, fault_plan=plan).run(scenarios)
    assert result.results == []
    assert len(result.failures) == 1
    record = result.failures[0]
    assert record.reason == "injected_fault" and record.kind == "transient"
    assert record.attempts == 3  # first try + two retries
    assert result.retries == 2
    assert record.scenario["model"] == "mlp"
    assert "injected" in result.failure_summary()


def test_deterministic_failure_is_never_retried(tmp_path):
    result = SweepRunner(cache_dir=tmp_path, retries=5, backoff_s=0.0,
                         strict=False).run(infeasible_grid().expand())
    assert len(result.failures) == 1
    record = result.failures[0]
    assert record.kind == "deterministic"
    assert record.reason in ("infeasible", "oom")
    assert record.attempts == 1  # the budget was not touched
    assert result.retries == 0


def test_strict_runner_still_raises_first_failure(tmp_path):
    """The historical contract: ``strict=True`` (default) re-raises."""
    with pytest.raises(ReproError):
        SweepRunner(cache_dir=tmp_path).run(infeasible_grid().expand())


def test_timeout_without_retries_is_recorded_as_timeout(tmp_path):
    scenarios = tiny_grid(batch_sizes=(16,)).expand()
    key = scenarios[0].key()
    plan = FaultPlan(faults=[FaultSpec(kind="slow", key=key, times=1,
                                       delay_s=0.2)])
    result = SweepRunner(cache_dir=tmp_path, timeout_s=0.05, strict=False,
                         fault_plan=plan).run(scenarios)
    assert [f.reason for f in result.failures] == ["timeout"]
    assert isinstance(result.failures[0].error_obj, ScenarioTimeoutError)


# -- journal + resume -----------------------------------------------------------------


def test_interrupted_sweep_resumes_without_rerunning_completed(tmp_path):
    """The acceptance pin: resume re-runs zero completed scenarios."""
    scenarios = tiny_grid(batch_sizes=(16, 32, 64)).expand()
    keys = [s.key() for s in scenarios]
    plan = FaultPlan(faults=[FaultSpec(kind="interrupt", key=keys[1])])
    with pytest.raises(KeyboardInterrupt):
        SweepRunner(cache_dir=tmp_path, strict=False, fault_plan=plan).run(scenarios)

    # The journal recorded the scenario that finished before the interrupt.
    journal = RunJournal.for_keys(tmp_path, keys, RESULT_SCHEMA_VERSION)
    assert journal.completed(keys[0])
    completed_entry = dict(journal.entries[keys[0]])

    resumed = SweepRunner(cache_dir=tmp_path, strict=False,
                          resume=True).run(scenarios)
    assert resumed.cache_hits == 1  # served, not re-executed
    assert len(resumed.results) == len(scenarios)
    assert resumed.failures == []
    # Journal-verified: the completed entry was not rewritten by the resume.
    after = RunJournal.for_keys(tmp_path, keys, RESULT_SCHEMA_VERSION)
    assert after.entries[keys[0]] == completed_entry


def test_resume_skips_prior_deterministic_failure(tmp_path):
    scenarios = infeasible_grid().expand()
    first = SweepRunner(cache_dir=tmp_path, strict=False).run(scenarios)
    assert first.failures and first.failures[0].kind == "deterministic"

    resumed = SweepRunner(cache_dir=tmp_path, strict=False,
                          resume=True).run(scenarios)
    assert resumed.resumed_skipped == 1
    assert len(resumed.failures) == 1
    assert resumed.failures[0].resumed is True
    assert resumed.failures[0].reason == first.failures[0].reason


def test_fresh_run_does_not_consume_stale_journal(tmp_path):
    """Without ``resume=True`` a prior deterministic failure re-runs."""
    scenarios = infeasible_grid().expand()
    SweepRunner(cache_dir=tmp_path, strict=False).run(scenarios)
    fresh = SweepRunner(cache_dir=tmp_path, strict=False).run(scenarios)
    assert fresh.resumed_skipped == 0
    assert fresh.failures[0].resumed is False
    assert fresh.failures[0].attempts == 1


def test_run_id_is_order_insensitive_and_grid_sensitive():
    keys = ["b", "a", "c"]
    assert run_id_for_keys(keys, 7) == run_id_for_keys(sorted(keys), 7)
    assert run_id_for_keys(keys, 7) != run_id_for_keys(keys + ["d"], 7)
    assert run_id_for_keys(keys, 7) != run_id_for_keys(keys, 8)


def test_corrupt_journal_degrades_to_empty(tmp_path):
    keys = ["a", "b"]
    journal = RunJournal.for_keys(tmp_path, keys, 7)
    journal.record_completed("a", 1)
    journal.path.write_text("{ torn", encoding="utf-8")
    reloaded = RunJournal.for_keys(tmp_path, keys, 7)
    assert reloaded.entries == {}


def test_clear_cache_wipes_journals_without_counting_them(tmp_path):
    scenarios = tiny_grid().expand()
    runner = SweepRunner(cache_dir=tmp_path)
    runner.run(scenarios)
    journal_files = list((tmp_path / JOURNALS_DIR).glob("*.json"))
    assert journal_files  # the run journaled its completions
    removed = runner.clear_cache()
    assert removed == len(scenarios)  # journals not counted
    assert not list((tmp_path / JOURNALS_DIR).glob("*.json"))


# -- quarantine -----------------------------------------------------------------------


def test_corrupt_cache_entry_is_quarantined_not_overwritten_silently(tmp_path):
    scenarios = tiny_grid(batch_sizes=(16,)).expand()
    runner = SweepRunner(cache_dir=tmp_path)
    runner.run(scenarios)
    entry = tmp_path / f"{scenarios[0].key()}.json"
    entry.write_text("{ torn write", encoding="utf-8")

    result = runner.run(scenarios)
    assert result.cache_misses == 1  # recomputed
    assert result.quarantined == {"cache_corrupt": 1}
    quarantined = list((tmp_path / "quarantine").iterdir())
    assert [p.name for p in quarantined] == [entry.name]
    assert quarantined[0].read_text(encoding="utf-8") == "{ torn write"
    # The entry itself was rewritten with a fresh, valid result.
    assert json.loads(entry.read_text())["schema_version"] == RESULT_SCHEMA_VERSION


def test_schema_mismatch_is_invalidation_not_corruption(tmp_path):
    scenarios = tiny_grid(batch_sizes=(16,)).expand()
    runner = SweepRunner(cache_dir=tmp_path)
    runner.run(scenarios)
    entry = tmp_path / f"{scenarios[0].key()}.json"
    stale = json.loads(entry.read_text())
    stale["schema_version"] = RESULT_SCHEMA_VERSION - 1
    entry.write_text(json.dumps(stale), encoding="utf-8")

    result = runner.run(scenarios)
    assert result.cache_misses == 1
    assert result.quarantined == {}  # legitimate invalidation, no quarantine
    assert not (tmp_path / "quarantine").exists()


def test_corrupted_template_store_is_quarantined_and_repriced(tmp_path):
    """A template_corrupt fault poisons the published archive; the next run
    quarantines it, recompiles, and still prices bit-identically."""
    scenarios = tiny_grid(execution_mode="replay").expand()
    clean = SweepRunner(cache_dir=tmp_path / "clean").run(
        tiny_grid(execution_mode="replay").expand())

    from repro.experiments.replay import template_key
    cache = tmp_path / "chaos"
    family_key = template_key(scenarios[0].config)
    plan = FaultPlan(faults=[FaultSpec(kind="template_corrupt",
                                       key=family_key)])
    first = SweepRunner(cache_dir=cache, strict=False, fault_plan=plan).run(scenarios)
    assert comparable(first) == comparable(clean)

    # Drop the result cache (keep the poisoned template store) so the next
    # run must replay; it quarantines the archive, recompiles, and converges.
    for entry in cache.glob("*.json"):
        entry.unlink()
    second = SweepRunner(cache_dir=cache, strict=False).run(
        tiny_grid(execution_mode="replay").expand())
    assert comparable(second) == comparable(clean)
    assert second.quarantined.get("template_corrupt") == 1
    quarantine = cache / "templates" / "quarantine"
    assert quarantine.is_dir() and list(quarantine.iterdir())


# -- cross-process error fidelity (satellite: picklability regression) ---------------


def test_infeasible_error_crosses_pool_boundary_with_fields_intact(tmp_path):
    """The structured capacity error survives the pool round-trip, carrying
    its byte counts and the worker traceback, including under retry."""
    grid = tiny_grid(batch_sizes=(16, 32), swaps=("lru",),
                     device_memory_capacities=(1,))
    result = SweepRunner(cache_dir=tmp_path, workers=2, retries=1,
                         backoff_s=0.0, strict=False).run(grid.expand())
    assert len(result.failures) == 2
    for record in result.failures:
        error = record.error_obj
        assert isinstance(error, (InfeasibleScenarioError, OutOfMemoryError))
        assert error.capacity == 1  # keyword fields survived pickling
        assert record.attempts == 1  # deterministic: the retry budget unused
        assert "run_scenario" in record.traceback


def test_remote_traceback_is_chained_under_retry(tmp_path):
    """Transient worker failures re-raised strictly still chain the remote
    traceback after retries (the _RemoteTraceback cause survives)."""
    scenarios = tiny_grid().expand()
    plan = FaultPlan(faults=[FaultSpec(kind="error", key=s.key(), times=10)
                             for s in scenarios])
    with pytest.raises(InjectedFaultError) as caught:
        SweepRunner(cache_dir=tmp_path, workers=2, retries=1, backoff_s=0.0,
                    fault_plan=plan).run(scenarios)
    assert caught.value.attempt == 1  # the *last* attempt's error surfaces
    assert "fire_execution" in str(caught.value.__cause__)


# -- CLI ------------------------------------------------------------------------------


def test_cli_chaos_seed_converges_and_exits_zero(tmp_path, capsys):
    from repro.cli import main

    code = main(["sweep", "--models", "mlp", "--batch-sizes", "16,32",
                 "--iterations", "1", "--chaos-seed", "7", "--retries", "3",
                 "--backoff-s", "0.01", "--strict", "--no-cache",
                 "--cache-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 0, captured.err
    assert "chaos: seeded fault plan (seed=7" in captured.out
    assert "retried" in captured.out


def test_cli_strict_exits_nonzero_on_failure(tmp_path, capsys):
    from repro.cli import main

    args = ["sweep", "--models", "mlp", "--batch-sizes", "16,32",
            "--device-memory-gib", "0.000001", "--swap", "lru",
            "--cache-dir", str(tmp_path / "a")]
    assert main(args) == 1  # every scenario failed -> nonzero even lenient
    capsys.readouterr()

    # A partial grid (one good, one infeasible) is lenient by default...
    partial = ["sweep", "--models", "mlp", "--batch-sizes", "16",
               "--device-memory-gib", "0.000001,64", "--swap", "lru",
               "--cache-dir", str(tmp_path / "b")]
    assert main(partial) == 0
    captured = capsys.readouterr()
    assert "failed" in captured.err
    # ... and nonzero under --strict.
    assert main(partial + ["--strict", "--no-cache"]) == 1


def test_failure_record_to_dict_is_json_serializable():
    record = FailureRecord(scenario={"model": "mlp"}, key="k", reason="timeout",
                           kind="transient", attempts=2, error="boom",
                           error_obj=ValueError("boom"))
    data = record.to_dict()
    assert "error_obj" not in data
    json.dumps(data)  # round-trips cleanly
