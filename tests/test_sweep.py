"""Tests for the scenario-sweep engine (grid expansion, caching, parallelism)."""

import json

import pytest

from repro.cli import main as cli_main
from repro.experiments.sweep import (
    RESULT_SCHEMA_VERSION,
    Scenario,
    ScenarioResult,
    SweepGrid,
    SweepRunner,
    run_scenario,
    run_sweep,
)
from repro.train.session import TrainingRunConfig


def tiny_grid(**overrides):
    """A fast virtual-mode grid used throughout this module."""
    settings = dict(
        models=("mlp",),
        batch_sizes=(16, 32),
        iterations=(2,),
        allocators=("caching",),
        model_kwargs={"hidden_dim": 32},
        dataset="two_cluster",
        execution_mode="virtual",
    )
    settings.update(overrides)
    return SweepGrid(**settings)


# -- grid expansion -------------------------------------------------------------------


def test_grid_expansion_is_full_cross_product():
    grid = tiny_grid(batch_sizes=(16, 32, 64), allocators=("caching", "bump"),
                     iterations=(1, 2), seeds=(0, 7))
    scenarios = grid.expand()
    assert grid.size() == 3 * 2 * 2 * 2
    assert len(scenarios) == grid.size()
    seen = {(s.config.batch_size, s.config.allocator, s.config.iterations, s.config.seed)
            for s in scenarios}
    assert len(seen) == len(scenarios)
    assert all(s.config.model == "mlp" for s in scenarios)
    assert all(s.config.model_kwargs == {"hidden_dim": 32} for s in scenarios)


def test_grid_expansion_order_is_deterministic():
    grid = tiny_grid(batch_sizes=(32, 16), allocators=("bump", "caching"))
    first = [s.describe() for s in grid.expand()]
    second = [s.describe() for s in grid.expand()]
    assert first == second
    # Dimension order is respected: batch sizes in declared order, outermost first.
    assert [s.config.batch_size for s in grid.expand()] == [32, 32, 16, 16]


def test_grid_rejects_unknown_swap_policy():
    with pytest.raises(ValueError, match="unknown swap policy"):
        tiny_grid(swap_policies=("teleport",)).expand()


def test_scenario_key_ignores_label_but_not_workload():
    config_a = TrainingRunConfig(model="mlp", batch_size=16, iterations=2,
                                 execution_mode="virtual", label="a")
    config_b = TrainingRunConfig(model="mlp", batch_size=16, iterations=2,
                                 execution_mode="virtual", label="something else")
    config_c = TrainingRunConfig(model="mlp", batch_size=32, iterations=2,
                                 execution_mode="virtual", label="a")
    assert Scenario(config_a).key() == Scenario(config_b).key()
    assert Scenario(config_a).key() != Scenario(config_c).key()
    assert Scenario(config_a, swap_policy="planner").key() != Scenario(config_a).key()


def test_config_to_dict_matches_dataclasses_asdict():
    """Scenario fingerprints hash ``config.to_dict()``; it must stay a faithful
    (recursion-free) mirror of ``dataclasses.asdict`` or cache keys drift."""
    import dataclasses

    config = TrainingRunConfig(model="mlp", model_kwargs={"hidden_dim": 32},
                               batch_size=16, iterations=2, dtype="float16",
                               n_devices=2, host_dispatch_overhead_ns=2_000,
                               execution_mode="symbolic")
    assert config.to_dict() == dataclasses.asdict(config)
    # A mutation of the returned mapping must not leak back into the config.
    config.to_dict()["model_kwargs"]["hidden_dim"] = 64
    assert config.model_kwargs == {"hidden_dim": 32}


# -- scenario execution ---------------------------------------------------------------


def test_run_scenario_produces_complete_metrics():
    scenario = tiny_grid().expand()[0]
    result = run_scenario(scenario)
    assert result.key == scenario.key()
    assert result.num_events > 0
    assert result.num_blocks > 0
    assert result.peak_allocated_bytes > 0
    assert result.peak_live_bytes > 0
    assert result.step_time_s_mean > 0
    assert result.ati["count"] > 0
    assert 0.0 <= result.swappable_fraction <= 1.0
    assert result.swap is None
    assert set(result.breakdown["bucket_bytes"]) == {
        "input data", "parameters", "intermediate results"}
    assert not result.from_cache


def test_run_scenario_swap_policies_report_savings():
    base = tiny_grid().expand()[0]
    for policy in ("planner", "swap_advisor", "zero_offload"):
        result = run_scenario(Scenario(config=base.config, swap_policy=policy))
        assert result.swap is not None
        assert result.swap["policy"] == policy
        assert result.swap["savings_bytes"] >= 0


def test_scenario_result_round_trips_through_json():
    result = run_scenario(tiny_grid().expand()[0])
    data = json.loads(json.dumps(result.to_dict()))
    restored = ScenarioResult.from_dict(data)
    assert restored.to_dict() == result.to_dict()


def test_results_are_deterministic_under_seed():
    scenario = tiny_grid().expand()[0]
    first = run_scenario(scenario).to_dict()
    second = run_scenario(scenario).to_dict()
    first.pop("wall_time_s")
    second.pop("wall_time_s")
    assert first == second


# -- caching --------------------------------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    runner = SweepRunner(cache_dir=tmp_path / "sweeps")
    grid = tiny_grid()
    first = runner.run(grid)
    assert (first.cache_hits, first.cache_misses) == (0, 2)
    assert not any(result.from_cache for result in first.results)

    second = runner.run(grid)
    assert (second.cache_hits, second.cache_misses) == (2, 0)
    assert all(result.from_cache for result in second.results)

    def comparable(sweep):
        rows = []
        for result in sweep.results:
            data = result.to_dict()
            data.pop("wall_time_s")
            rows.append(data)
        return rows

    assert comparable(first) == comparable(second)


def test_cache_disabled_runner_never_reads(tmp_path):
    cache_dir = tmp_path / "sweeps"
    grid = tiny_grid(batch_sizes=(16,))
    SweepRunner(cache_dir=cache_dir).run(grid)
    rerun = SweepRunner(cache_dir=cache_dir, use_cache=False).run(grid)
    assert (rerun.cache_hits, rerun.cache_misses) == (0, 1)


def test_corrupt_cache_entry_is_treated_as_miss(tmp_path):
    cache_dir = tmp_path / "sweeps"
    runner = SweepRunner(cache_dir=cache_dir)
    grid = tiny_grid(batch_sizes=(16,))
    runner.run(grid)
    entries = list(cache_dir.glob("*.json"))
    assert len(entries) == 1
    entries[0].write_text("{not json", encoding="utf-8")
    again = runner.run(grid)
    assert (again.cache_hits, again.cache_misses) == (0, 1)
    # The corrupt entry was rewritten and is valid again.
    payload = json.loads(entries[0].read_text(encoding="utf-8"))
    assert payload["schema_version"] == RESULT_SCHEMA_VERSION


def test_schema_version_mismatch_invalidates_cache(tmp_path):
    cache_dir = tmp_path / "sweeps"
    runner = SweepRunner(cache_dir=cache_dir)
    grid = tiny_grid(batch_sizes=(16,))
    runner.run(grid)
    entry = next(cache_dir.glob("*.json"))
    payload = json.loads(entry.read_text(encoding="utf-8"))
    payload["schema_version"] = RESULT_SCHEMA_VERSION + 1
    entry.write_text(json.dumps(payload), encoding="utf-8")
    again = runner.run(grid)
    assert (again.cache_hits, again.cache_misses) == (0, 1)


def test_cache_key_depends_on_bandwidths(tmp_path):
    """Results computed under different Eq.-1 bandwidths never share an entry."""
    from repro.core.swap import BandwidthConfig

    cache_dir = tmp_path / "sweeps"
    grid = tiny_grid(batch_sizes=(16,))
    paper = SweepRunner(cache_dir=cache_dir).run(grid)
    assert paper.results[0].swappable_fraction > 0.0

    slow = BandwidthConfig(h2d_bytes_per_s=1e3, d2h_bytes_per_s=1e3)
    crawling = SweepRunner(cache_dir=cache_dir, bandwidths=slow).run(grid)
    assert (crawling.cache_hits, crawling.cache_misses) == (0, 1)
    assert crawling.results[0].swappable_fraction == 0.0
    # And the paper-bandwidth entry is still served to a default runner.
    again = SweepRunner(cache_dir=cache_dir).run(grid)
    assert again.cache_hits == 1
    assert again.results[0].swappable_fraction == paper.results[0].swappable_fraction


def test_failing_scenario_does_not_discard_completed_results(tmp_path):
    """Completed scenarios are cached even when a later scenario raises."""
    from repro.errors import ReproError

    cache_dir = tmp_path / "sweeps"
    runner = SweepRunner(cache_dir=cache_dir)
    good = tiny_grid(batch_sizes=(16,)).expand()
    # lenet5 cannot consume the 2-D two_cluster samples: this scenario raises.
    bad = Scenario(config=TrainingRunConfig(model="lenet5", dataset="two_cluster",
                                            batch_size=16, iterations=2,
                                            execution_mode="virtual"))
    with pytest.raises(ReproError):
        runner.run(good + [bad])
    # The good scenario's result survived the failure and is served from cache.
    rerun = runner.run(good)
    assert (rerun.cache_hits, rerun.cache_misses) == (1, 0)


def test_clear_cache_removes_entries(tmp_path):
    cache_dir = tmp_path / "sweeps"
    runner = SweepRunner(cache_dir=cache_dir)
    runner.run(tiny_grid())
    assert runner.clear_cache() == 2
    assert list(cache_dir.glob("*.json")) == []


# -- parallelism ----------------------------------------------------------------------


def test_parallel_run_matches_serial_run(tmp_path):
    grid = tiny_grid(batch_sizes=(16, 24, 32, 48))
    serial = SweepRunner(workers=1).run(grid)
    with SweepRunner(workers=2) as runner:
        parallel = runner.run(grid)

    def comparable(sweep):
        rows = []
        for result in sweep.results:
            data = result.to_dict()
            data.pop("wall_time_s")
            rows.append(data)
        return rows

    assert comparable(serial) == comparable(parallel)


# -- aggregation ----------------------------------------------------------------------


def test_sweep_result_rows_and_table():
    sweep = run_sweep(tiny_grid())
    rows = sweep.rows()
    assert len(rows) == 2
    assert rows[0]["batch_size"] == 16
    assert rows[1]["batch_size"] == 32
    for row in rows:
        assert {"model", "allocator", "peak_alloc_mib", "step_time_ms",
                "ati_p50_us", "swappable_frac", "cached"} <= set(row)
    table = sweep.summary_table()
    assert "batch_size" in table
    assert "peak_alloc_mib" in table


def test_sweep_result_filter_and_breakdown_series():
    sweep = run_sweep(tiny_grid(allocators=("caching", "bump")))
    assert len(sweep.filter(allocator="bump")) == 2
    assert len(sweep.filter(allocator="bump", batch_size=16)) == 1
    series = sweep.breakdown_series("batch_size")
    assert len(series.entries) == 4
    assert all(breakdown.total_bytes > 0 for _, breakdown in series.entries)


# -- CLI ------------------------------------------------------------------------------


def test_cli_sweep_dry_run(capsys):
    code = cli_main(["sweep", "--models", "mlp", "--batch-sizes", "16,32",
                     "--allocators", "caching,bump", "--dry-run"])
    out = capsys.readouterr().out
    assert code == 0
    assert "4 scenario(s):" in out
    assert "alloc=bump" in out


def test_cli_sweep_rejects_unknown_dimension_values(capsys):
    for argv in (["sweep", "--models", "mlp", "--allocators", "cachng"],
                 ["sweep", "--models", "not_a_model"],
                 ["sweep", "--models", "mlp", "--swap-policies", "teleport"],
                 ["sweep", "--models", "mlp", "--devices", "tpu9000"]):
        assert cli_main(argv) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "choose from" in err


def test_cli_sweep_runs_and_caches(tmp_path, capsys):
    argv = ["sweep", "--models", "mlp", "--batch-sizes", "16",
            "--cache-dir", str(tmp_path / "c"), "--json"]
    assert cli_main(argv) == 0
    out = capsys.readouterr().out
    assert "1 cached" not in out
    assert cli_main(argv) == 0
    out = capsys.readouterr().out
    assert "(1 cached, 0 executed" in out
    rows = json.loads(out[:out.rindex("]") + 1])
    assert rows[0]["model"] == "mlp"
    assert rows[0]["cached"] is True


# -- new axes: dtype, device, policy registry -----------------------------------------


def test_grid_expands_dtype_axis():
    grid = tiny_grid(dtypes=("float32", "float16"))
    scenarios = grid.expand()
    assert grid.size() == 4 == len(scenarios)
    # dtype varies fastest of the two (inside each batch size), declared order.
    assert [(s.config.batch_size, s.config.dtype) for s in scenarios] == [
        (16, "float32"), (16, "float16"), (32, "float32"), (32, "float16")]
    assert all("dtype=" in s.describe() for s in scenarios)


def test_dtype_axis_changes_footprint_and_cache_key():
    grid = tiny_grid(batch_sizes=(32,), dtypes=("float32", "float16"))
    f32, f16 = grid.expand()
    assert f32.key() != f16.key()
    r32, r16 = run_scenario(f32), run_scenario(f16)
    assert r16.scenario["dtype"] == "float16"
    # Half precision roughly halves the parameter bytes and shrinks the peak.
    assert r16.parameter_bytes * 2 == r32.parameter_bytes
    assert r16.peak_allocated_bytes < r32.peak_allocated_bytes


def test_registry_policies_run_through_the_sweep():
    base = tiny_grid(batch_sizes=(16,)).expand()[0]
    for policy in ("recompute", "pruning", "quantization"):
        result = run_scenario(Scenario(config=base.config, swap_policy=policy))
        assert result.swap is not None
        assert result.swap["policy"] == policy
        assert result.swap["savings_bytes"] >= 0


def test_device_axis_resolves_eq1_bandwidths_from_spec():
    from repro.core.swap import BandwidthConfig
    from repro.device.spec import get_device_spec

    titan = tiny_grid(batch_sizes=(16,)).expand()[0]
    v100 = tiny_grid(batch_sizes=(16,), device_specs=("v100_sxm2_16gb",)).expand()[0]
    assert titan.key() != v100.key()
    resolved = v100.resolve_bandwidths()
    spec = get_device_spec("v100_sxm2_16gb")
    assert resolved.h2d_bytes_per_s == spec.h2d_bandwidth
    # An explicit override still wins over the device spec.
    override = BandwidthConfig(h2d_bytes_per_s=1.0, d2h_bytes_per_s=1.0)
    assert v100.resolve_bandwidths(override) is override


def test_summary_table_shows_dtype_and_device_columns():
    sweep = run_sweep(tiny_grid(batch_sizes=(16,), dtypes=("float16",)))
    table = sweep.summary_table()
    assert "dtype" in table and "float16" in table
    assert "device_spec" in table and "titan_x_pascal" in table


def test_cli_sweep_rejects_unknown_dtype(capsys):
    assert cli_main(["sweep", "--models", "mlp", "--dtypes", "float8"]) == 2
    err = capsys.readouterr().err
    assert "--dtypes" in err and "choose from" in err


def test_parallel_failure_keeps_chunkmates_and_reraises(tmp_path):
    """A failing scenario inside a chunk neither hides the error nor
    discards the results of scenarios that shared its pool task."""
    from repro.errors import ReproError

    cache_dir = tmp_path / "sweeps"
    good = tiny_grid(batch_sizes=(16, 24, 32)).expand()
    bad = Scenario(config=TrainingRunConfig(model="lenet5", dataset="two_cluster",
                                            batch_size=16, iterations=2,
                                            execution_mode="symbolic"))
    with SweepRunner(cache_dir=cache_dir, workers=2, chunk_size=2) as runner:
        with pytest.raises(ReproError):
            runner.run(good + [bad])
        rerun = runner.run(good)
    assert (rerun.cache_hits, rerun.cache_misses) == (3, 0)


def test_runner_pool_is_reused_across_runs():
    """The worker pool persists between run() calls (no per-sweep respawn)."""
    with SweepRunner(workers=2) as runner:
        runner.run(tiny_grid(batch_sizes=(16, 24)))
        first_pool = runner._pool
        assert first_pool is not None
        runner.run(tiny_grid(batch_sizes=(32, 48)))
        assert runner._pool is first_pool
    assert runner._pool is None            # close() shut it down


def test_chunking_covers_every_scenario_exactly_once():
    runner = SweepRunner(workers=3, chunk_size=None)
    missing = [(index, None) for index in range(10)]
    chunks = runner._chunks(missing)
    flattened = [entry for chunk in chunks for entry in chunk]
    assert flattened == missing
    explicit = SweepRunner(workers=3, chunk_size=4)._chunks(missing)
    assert [len(chunk) for chunk in explicit] == [4, 4, 2]


def test_rows_report_per_scenario_wall_time():
    sweep = SweepRunner(workers=1).run(tiny_grid(batch_sizes=(16,)))
    row = sweep.rows()[0]
    assert "wall_s" in row and row["wall_s"] >= 0.0
    assert "wall_s" in sweep.summary_table().splitlines()[0]


def test_parallel_failure_carries_worker_traceback(tmp_path):
    """In-band worker failures re-raise with the remote traceback chained."""
    from repro.errors import ReproError

    good = tiny_grid(batch_sizes=(16, 24)).expand()
    bad = Scenario(config=TrainingRunConfig(model="lenet5", dataset="two_cluster",
                                            batch_size=16, iterations=2,
                                            execution_mode="symbolic"))
    with SweepRunner(workers=2, chunk_size=1) as runner:
        with pytest.raises(ReproError) as caught:
            runner.run(good + [bad])
    assert caught.value.__cause__ is not None
    assert "run_scenario" in str(caught.value.__cause__)
