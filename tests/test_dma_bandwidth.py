"""Tests for the DMA engine and the bandwidthTest reproduction."""

import pytest

from repro.device.bandwidth import BandwidthTest
from repro.device.clock import DeviceClock
from repro.device.dma import DmaEngine
from repro.device.spec import titan_x_pascal
from repro.device.timing import KernelTimingModel
from repro.units import GB, MIB


@pytest.fixture
def dma():
    spec = titan_x_pascal()
    clock = DeviceClock()
    return DmaEngine(spec, clock, KernelTimingModel(spec))


def test_synchronous_copy_advances_clock(dma):
    before = dma.clock.now_ns
    record = dma.host_to_device(10 * MIB)
    assert dma.clock.now_ns > before
    assert record.direction == "h2d"
    assert record.duration_ns == dma.clock.now_ns - before


def test_copy_duration_matches_bandwidth(dma):
    nbytes = 64 * MIB
    record = dma.device_to_host(nbytes)
    expected_transfer_ns = 1e9 * nbytes / titan_x_pascal().d2h_bandwidth
    overhead = titan_x_pascal().memcpy_launch_overhead_ns
    assert record.duration_ns == pytest.approx(expected_transfer_ns + overhead, rel=1e-6)


def test_async_copies_queue_on_the_copy_stream(dma):
    first = dma.async_host_to_device(10 * MIB)
    second = dma.async_host_to_device(10 * MIB)
    assert second.start_ns >= first.end_ns
    assert dma.clock.now_ns == 0  # async copies do not advance the device clock


def test_round_trip_time_matches_equation_one(dma):
    nbytes = 79_370  # the paper's 25 us operating point
    round_trip_ns = dma.round_trip_time_ns(nbytes)
    assert round_trip_ns == pytest.approx(25_000, rel=0.01)


def test_total_bytes_accounting(dma):
    dma.host_to_device(10)
    dma.device_to_host(20)
    dma.host_to_device(30)
    assert dma.total_bytes() == 60
    assert dma.total_bytes("h2d") == 40
    assert dma.total_bytes("d2h") == 20


def test_bandwidth_test_converges_to_configured_bandwidths(dma):
    report = BandwidthTest(dma, transfer_bytes=256 * MIB, repetitions=5).run()
    assert report.h2d_gb_per_s == pytest.approx(6.3, rel=0.02)
    assert report.d2h_gb_per_s == pytest.approx(6.4, rel=0.02)
    assert "Host to Device" in report.summary()


def test_bandwidth_test_small_transfers_lose_to_overhead(dma):
    small = BandwidthTest(dma, transfer_bytes=64 * 1024, repetitions=3).run()
    large = BandwidthTest(dma, transfer_bytes=256 * MIB, repetitions=3).run()
    assert small.h2d_gb_per_s < large.h2d_gb_per_s


def test_bandwidth_test_sweep_restores_transfer_size(dma):
    test = BandwidthTest(dma, transfer_bytes=1 * MIB, repetitions=2)
    reports = test.sweep([1 * MIB, 8 * MIB])
    assert len(reports) == 2
    assert test.transfer_bytes == 1 * MIB


def test_bandwidth_test_validates_arguments(dma):
    with pytest.raises(ValueError):
        BandwidthTest(dma, transfer_bytes=0)
    with pytest.raises(ValueError):
        BandwidthTest(dma, repetitions=0)
