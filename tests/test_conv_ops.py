"""Numerical tests for convolution, pooling and batch-norm kernels."""

import numpy as np
import pytest

from repro.tensor import conv_ops as C
from repro.tensor import from_numpy, full, randn, zeros
from repro.tensor.im2col import col2im, conv_output_hw, im2col, pool_output_hw
from repro.errors import ShapeError


def reference_conv2d(x, w, b, stride, padding):
    """Direct (slow) convolution used as the numerical reference."""
    batch, _, height, width = x.shape
    out_channels, _, kh, kw = w.shape
    padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (height + 2 * padding - kh) // stride + 1
    out_w = (width + 2 * padding - kw) // stride + 1
    out = np.zeros((batch, out_channels, out_h, out_w), dtype=np.float32)
    for n in range(batch):
        for o in range(out_channels):
            for i in range(out_h):
                for j in range(out_w):
                    window = padded[n, :, i * stride:i * stride + kh, j * stride:j * stride + kw]
                    out[n, o, i, j] = (window * w[o]).sum()
            if b is not None:
                out[n, o] += b[o]
    return out


# -- im2col -----------------------------------------------------------------------------------


def test_conv_output_hw():
    assert conv_output_hw(32, 32, 3, 3, 1, 1) == (32, 32)
    assert conv_output_hw(224, 224, 7, 7, 2, 3) == (112, 112)
    with pytest.raises(ShapeError):
        conv_output_hw(2, 2, 5, 5, 1, 0)


def test_im2col_col2im_adjoint_property(rng):
    """col2im(im2col(x)) sums each input element once per window it appears in."""
    x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
    cols = im2col(x, 3, 3, 1, 1)
    ones = np.ones_like(cols)
    folded = col2im(ones, x.shape, 3, 3, 1, 1)
    # Interior pixels are covered by 9 windows of a 3x3 kernel with padding 1.
    assert folded[0, 0, 3, 3] == pytest.approx(9.0)
    assert folded[0, 0, 0, 0] == pytest.approx(4.0)   # corners by 4


def test_im2col_matmul_equals_direct_conv(rng):
    x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
    w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
    cols = im2col(x, 3, 3, 1, 1)
    out = (cols @ w.reshape(4, -1).T).reshape(2, 8, 8, 4).transpose(0, 3, 1, 2)
    np.testing.assert_allclose(out, reference_conv2d(x, w, None, 1, 1), rtol=1e-4, atol=1e-4)


# -- convolution --------------------------------------------------------------------------------


@pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1), (1, 0)])
def test_conv2d_forward_matches_reference(test_device, rng, stride, padding):
    x = from_numpy(test_device, rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
    w = from_numpy(test_device, rng.standard_normal((4, 3, 3, 3)).astype(np.float32))
    b = from_numpy(test_device, rng.standard_normal(4).astype(np.float32))
    out = C.conv2d_forward(x, w, b, stride=stride, padding=padding)
    expected = reference_conv2d(x.numpy(), w.numpy(), b.numpy(), stride, padding)
    np.testing.assert_allclose(out.numpy(), expected, rtol=1e-4, atol=1e-4)


def test_conv2d_channel_mismatch_raises(test_device):
    x = zeros(test_device, (1, 3, 8, 8))
    w = zeros(test_device, (4, 5, 3, 3))
    with pytest.raises(ShapeError):
        C.conv2d_forward(x, w, None, stride=1, padding=1)


def test_conv2d_backward_input_matches_numerical(test_device, rng):
    x_np = rng.standard_normal((1, 2, 5, 5)).astype(np.float64)
    w_np = rng.standard_normal((3, 2, 3, 3)).astype(np.float64)
    grad_np = rng.standard_normal((1, 3, 5, 5)).astype(np.float64)

    def forward(x_values):
        """Direct float64 convolution contracted with the upstream gradient."""
        padded = np.pad(x_values, ((0, 0), (0, 0), (1, 1), (1, 1)))
        out = np.zeros((1, 3, 5, 5), dtype=np.float64)
        for o in range(3):
            for i in range(5):
                for j in range(5):
                    window = padded[0, :, i:i + 3, j:j + 3]
                    out[0, o, i, j] = (window * w_np[o]).sum()
        return (out * grad_np).sum()

    numerical = np.zeros_like(x_np)
    epsilon = 1e-4
    for index in np.ndindex(*x_np.shape):
        plus, minus = x_np.copy(), x_np.copy()
        plus[index] += epsilon
        minus[index] -= epsilon
        numerical[index] = (forward(plus) - forward(minus)) / (2 * epsilon)

    grad_output = from_numpy(test_device, grad_np.astype(np.float32))
    weight = from_numpy(test_device, w_np.astype(np.float32))
    grad_input = C.conv2d_backward_input(grad_output, weight, (1, 2, 5, 5), stride=1, padding=1)
    np.testing.assert_allclose(grad_input.numpy(), numerical, rtol=1e-2, atol=1e-3)


def test_conv2d_backward_params_accumulates(test_device, rng):
    x = from_numpy(test_device, rng.standard_normal((2, 2, 6, 6)).astype(np.float32))
    grad_out = from_numpy(test_device, rng.standard_normal((2, 3, 6, 6)).astype(np.float32))
    grad_w = zeros(test_device, (3, 2, 3, 3))
    grad_b = zeros(test_device, (3,))
    C.conv2d_backward_params(x, grad_out, grad_w, grad_b, stride=1, padding=1)
    first_pass = grad_w.numpy().copy()
    C.conv2d_backward_params(x, grad_out, grad_w, grad_b, stride=1, padding=1)
    np.testing.assert_allclose(grad_w.numpy(), 2 * first_pass, rtol=1e-4)
    np.testing.assert_allclose(grad_b.numpy(), 2 * grad_out.numpy().sum(axis=(0, 2, 3)),
                               rtol=1e-4)


def test_conv2d_workspace_is_freed(test_device, rng):
    allocated_before = test_device.allocated_bytes
    x = from_numpy(test_device, rng.standard_normal((1, 3, 8, 8)).astype(np.float32))
    w = from_numpy(test_device, rng.standard_normal((4, 3, 3, 3)).astype(np.float32))
    out = C.conv2d_forward(x, w, None, stride=1, padding=1)
    # Only x, w and the output should remain allocated (workspace freed).
    expected_live = x.nbytes + w.nbytes + out.nbytes
    assert test_device.allocated_bytes - allocated_before <= expected_live + 1024


# -- pooling -------------------------------------------------------------------------------------


def test_maxpool_forward_and_backward(test_device):
    x_np = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    x = from_numpy(test_device, x_np)
    out, indices = C.maxpool2d_forward(x, kernel=2, stride=2)
    np.testing.assert_allclose(out.numpy(), [[[[5, 7], [13, 15]]]])
    grad = from_numpy(test_device, np.ones((1, 1, 2, 2), dtype=np.float32))
    grad_x = C.maxpool2d_backward(grad, indices, x.shape, kernel=2, stride=2)
    expected = np.zeros((1, 1, 4, 4), dtype=np.float32)
    expected[0, 0, 1, 1] = expected[0, 0, 1, 3] = 1
    expected[0, 0, 3, 1] = expected[0, 0, 3, 3] = 1
    np.testing.assert_allclose(grad_x.numpy(), expected)


def test_avgpool_forward_and_backward(test_device):
    x = from_numpy(test_device, np.ones((1, 2, 4, 4), dtype=np.float32))
    out = C.avgpool2d_forward(x, kernel=2, stride=2)
    np.testing.assert_allclose(out.numpy(), np.ones((1, 2, 2, 2)))
    grad = from_numpy(test_device, np.ones((1, 2, 2, 2), dtype=np.float32))
    grad_x = C.avgpool2d_backward(grad, x.shape, kernel=2, stride=2)
    np.testing.assert_allclose(grad_x.numpy(), np.full((1, 2, 4, 4), 0.25))


def test_global_avg_pool(test_device, rng):
    x_np = rng.standard_normal((2, 3, 5, 5)).astype(np.float32)
    x = from_numpy(test_device, x_np)
    out = C.global_avg_pool_forward(x)
    np.testing.assert_allclose(out.numpy(), x_np.mean(axis=(2, 3), keepdims=True), rtol=1e-5)
    grad = from_numpy(test_device, np.ones((2, 3, 1, 1), dtype=np.float32))
    grad_x = C.global_avg_pool_backward(grad, x.shape)
    np.testing.assert_allclose(grad_x.numpy(), np.full(x_np.shape, 1.0 / 25), rtol=1e-5)


# -- batch normalization -----------------------------------------------------------------------------


def test_batchnorm_forward_normalizes_channels(test_device, rng):
    x_np = rng.standard_normal((8, 4, 6, 6)).astype(np.float32) * 3 + 2
    x = from_numpy(test_device, x_np)
    gamma = full(test_device, (4,), 1.0)
    beta = zeros(test_device, (4,))
    running_mean = zeros(test_device, (4,))
    running_var = full(test_device, (4,), 1.0)
    out, save_mean, save_invstd = C.batchnorm2d_forward(
        x, gamma, beta, running_mean, running_var, momentum=0.1, eps=1e-5, training=True)
    values = out.numpy()
    np.testing.assert_allclose(values.mean(axis=(0, 2, 3)), np.zeros(4), atol=1e-4)
    np.testing.assert_allclose(values.std(axis=(0, 2, 3)), np.ones(4), atol=1e-3)
    # Running statistics moved toward the batch statistics.
    assert not np.allclose(running_mean.numpy(), np.zeros(4))
    np.testing.assert_allclose(save_mean.numpy(), x_np.mean(axis=(0, 2, 3)), rtol=1e-4)


def test_batchnorm_eval_uses_running_stats(test_device, rng):
    x = from_numpy(test_device, rng.standard_normal((4, 2, 3, 3)).astype(np.float32))
    gamma = full(test_device, (2,), 1.0)
    beta = zeros(test_device, (2,))
    running_mean = zeros(test_device, (2,))
    running_var = full(test_device, (2,), 1.0)
    out, _, _ = C.batchnorm2d_forward(x, gamma, beta, running_mean, running_var,
                                      momentum=0.1, eps=0.0, training=False)
    np.testing.assert_allclose(out.numpy(), x.numpy(), rtol=1e-4)


def test_batchnorm_backward_matches_numerical(test_device, rng):
    x_np = rng.standard_normal((3, 2, 4, 4)).astype(np.float64)
    gamma_np = rng.standard_normal(2).astype(np.float64)
    grad_np = rng.standard_normal((3, 2, 4, 4)).astype(np.float64)
    eps = 1e-5

    def forward(values):
        mean = values.mean(axis=(0, 2, 3), keepdims=True)
        var = values.var(axis=(0, 2, 3), keepdims=True)
        x_hat = (values - mean) / np.sqrt(var + eps)
        return (x_hat * gamma_np[None, :, None, None] * grad_np).sum()

    numerical = np.zeros_like(x_np)
    epsilon = 1e-5
    for index in np.ndindex(*x_np.shape):
        plus, minus = x_np.copy(), x_np.copy()
        plus[index] += epsilon
        minus[index] -= epsilon
        numerical[index] = (forward(plus) - forward(minus)) / (2 * epsilon)

    x = from_numpy(test_device, x_np.astype(np.float32))
    gamma = from_numpy(test_device, gamma_np.astype(np.float32))
    beta = zeros(test_device, (2,))
    running_mean = zeros(test_device, (2,))
    running_var = full(test_device, (2,), 1.0)
    out, save_mean, save_invstd = C.batchnorm2d_forward(
        x, gamma, beta, running_mean, running_var, momentum=0.1, eps=eps, training=True)
    grad_out = from_numpy(test_device, grad_np.astype(np.float32))
    grad_gamma = zeros(test_device, (2,))
    grad_beta = zeros(test_device, (2,))
    grad_x = C.batchnorm2d_backward(grad_out, x, gamma, save_mean, save_invstd,
                                    grad_gamma, grad_beta)
    np.testing.assert_allclose(grad_x.numpy(), numerical, rtol=1e-2, atol=1e-3)
    np.testing.assert_allclose(grad_beta.numpy(), grad_np.sum(axis=(0, 2, 3)), rtol=1e-3)
