"""Tests for the access-time-interval analysis and distribution statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ati import (
    compute_access_intervals,
    fraction_below,
    interval_values_us,
    intervals_by_category,
    intervals_by_kind,
    summarize_intervals,
)
from repro.core.stats import (
    concentration_ratio,
    empirical_cdf,
    gaussian_kde_trace,
    histogram,
    violin_stats,
)
from repro.core.trace import MemoryTrace
from repro.errors import EmptyTraceError


def test_ati_computed_per_block(simple_trace):
    intervals = compute_access_intervals(simple_trace)
    by_block = {}
    for interval in intervals:
        by_block.setdefault(interval.block_id, []).append(interval)
    # Block 2: write@3us -> read@10us => one interval of 7us.
    assert [i.interval_us for i in by_block[2]] == [7.0]
    # Block 1: write@1us -> read@12us -> read@112us => 11us and 100us.
    assert [i.interval_us for i in by_block[1]] == [11.0, 100.0]
    # Block 3: write@101 -> read@110 => 9us.
    assert [i.interval_us for i in by_block[3]] == [9.0]


def test_ati_include_lifecycle_adds_malloc_free_pairs(simple_trace):
    access_only = compute_access_intervals(simple_trace)
    with_lifecycle = compute_access_intervals(simple_trace, include_lifecycle=True)
    assert len(with_lifecycle) > len(access_only)


def test_ati_min_interval_filter(simple_trace):
    intervals = compute_access_intervals(simple_trace, min_interval_ns=50_000)
    assert all(interval.interval_ns >= 50_000 for interval in intervals)


def test_ati_empty_trace_raises():
    with pytest.raises(EmptyTraceError):
        compute_access_intervals(MemoryTrace())


def test_ati_summary_percentiles(simple_trace):
    summary = summarize_intervals(compute_access_intervals(simple_trace))
    assert summary.count == 4
    assert summary.min_us == 7.0
    assert summary.max_us == 100.0
    assert summary.p50_us <= summary.p90_us <= summary.p99_us <= summary.max_us
    assert set(summary.to_dict()) == {"count", "mean_us", "p50_us", "p90_us", "p99_us",
                                      "min_us", "max_us"}


def test_ati_summary_of_empty_set_is_zero():
    summary = summarize_intervals([])
    assert summary.count == 0
    assert summary.max_us == 0.0


def test_fraction_below_threshold(simple_trace):
    intervals = compute_access_intervals(simple_trace)
    assert fraction_below(intervals, 12.0) == pytest.approx(3 / 4)
    assert fraction_below(intervals, 1e9) == 1.0
    assert fraction_below([], 10) == 0.0


def test_grouping_by_kind_and_category(simple_trace):
    intervals = compute_access_intervals(simple_trace)
    by_kind = intervals_by_kind(intervals)
    assert set(by_kind) <= {"read", "write"}
    by_category = intervals_by_category(intervals)
    assert "parameter" in by_category
    assert "activation" in by_category
    values = interval_values_us(intervals)
    assert values.shape == (4,)


# -- distribution statistics ---------------------------------------------------------------


def test_empirical_cdf_properties():
    cdf = empirical_cdf([3.0, 1.0, 2.0, 2.0])
    assert list(cdf.values) == [1.0, 2.0, 2.0, 3.0]
    assert cdf.probabilities[-1] == pytest.approx(1.0)
    assert cdf.fraction_below(2.0) == pytest.approx(0.75)
    assert cdf.quantile(0.5) == pytest.approx(2.0)
    assert len(cdf.sample_points(3)) == 3
    empty = empirical_cdf([])
    assert empty.fraction_below(1.0) == 0.0
    assert empty.quantile(0.5) == 0.0
    assert empty.sample_points() == []


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1,
                max_size=200))
def test_cdf_is_monotone_and_bounded(samples):
    cdf = empirical_cdf(samples)
    assert np.all(np.diff(cdf.values) >= 0)
    assert np.all(np.diff(cdf.probabilities) >= 0)
    assert cdf.probabilities[0] > 0
    assert cdf.probabilities[-1] == pytest.approx(1.0)


def test_histogram_counts_total():
    hist = histogram([1, 2, 2, 3, 10], bins=5)
    assert hist.total == 5
    assert hist.densities().sum() == pytest.approx(1.0)
    empty = histogram([], bins=4)
    assert empty.total == 0
    assert empty.densities().sum() == 0.0


def test_violin_stats_quartiles():
    stats = violin_stats(np.arange(1, 101, dtype=float), label="reads")
    assert stats.label == "reads"
    assert stats.count == 100
    assert stats.q1 == pytest.approx(25.75)
    assert stats.median == pytest.approx(50.5)
    assert stats.q3 == pytest.approx(75.25)
    assert stats.iqr == pytest.approx(49.5)
    assert stats.density_x.size > 0
    assert stats.to_dict()["max"] == 100.0


def test_violin_stats_empty_and_degenerate():
    empty = violin_stats([], label="empty")
    assert empty.count == 0
    constant = violin_stats([5.0, 5.0, 5.0], label="const")
    assert constant.median == 5.0


def test_gaussian_kde_integrates_to_about_one():
    samples = np.random.default_rng(0).normal(10, 2, size=500)
    x, density = gaussian_kde_trace(samples, num_points=200)
    integral = np.trapezoid(density, x)
    assert integral == pytest.approx(1.0, rel=0.1)


def test_concentration_ratio():
    assert concentration_ratio([1, 2, 3, 10], 1, 3) == pytest.approx(0.75)
    assert concentration_ratio([], 0, 1) == 0.0
