"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.events import MemoryCategory
from repro.device import Device, small_test_device, titan_x_pascal

from tests.helpers import build_trace


@pytest.fixture
def test_device():
    """A tiny eager device for unit tests (256 MiB, fast overheads)."""
    return Device(small_test_device(), execution_mode="eager")


@pytest.fixture
def virtual_device():
    """A Titan-X-like device running in virtual (shape-only) mode."""
    return Device(titan_x_pascal(), execution_mode="virtual")


@pytest.fixture
def rng():
    """A deterministic NumPy generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def simple_trace():
    """A small hand-built trace: two blocks, two iterations."""
    us = 1_000
    return build_trace(
        [
            ("malloc", 0 * us, 1, 1024, MemoryCategory.PARAMETER, 0),
            ("write", 1 * us, 1, 1024, MemoryCategory.PARAMETER, 0),
            ("malloc", 2 * us, 2, 4096, MemoryCategory.ACTIVATION, 0),
            ("write", 3 * us, 2, 4096, MemoryCategory.ACTIVATION, 0),
            ("read", 10 * us, 2, 4096, MemoryCategory.ACTIVATION, 0),
            ("read", 12 * us, 1, 1024, MemoryCategory.PARAMETER, 0),
            ("free", 15 * us, 2, 4096, MemoryCategory.ACTIVATION, 0),
            ("malloc", 100 * us, 3, 4096, MemoryCategory.ACTIVATION, 1),
            ("write", 101 * us, 3, 4096, MemoryCategory.ACTIVATION, 1),
            ("read", 110 * us, 3, 4096, MemoryCategory.ACTIVATION, 1),
            ("read", 112 * us, 1, 1024, MemoryCategory.PARAMETER, 1),
            ("free", 115 * us, 3, 4096, MemoryCategory.ACTIVATION, 1),
        ],
        iteration_marks=[(0, 20 * us), (100 * us, 120 * us)],
        end_ns=120 * us,
    )


@pytest.fixture(scope="session")
def small_mlp_session():
    """A shared eager training session (small MLP, 5 iterations)."""
    from repro.experiments.configs import small_mlp_config
    from repro.train.session import run_training_session

    return run_training_session(small_mlp_config(batch_size=32, iterations=5, hidden_dim=64))


@pytest.fixture(scope="session")
def paper_mlp_session():
    """A shared virtual paper-MLP session (reduced batch to stay fast)."""
    from repro.experiments.configs import paper_mlp_config
    from repro.train.session import run_training_session

    return run_training_session(paper_mlp_config(batch_size=4096, iterations=5,
                                                 execution_mode="virtual"))
