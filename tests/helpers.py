"""Shared trace-building helpers for the tier-1 suite.

This module (not ``conftest.py``) is the import target for plain helper
functions, so that test modules never depend on conftest import order.
"""

from __future__ import annotations

from repro.core.events import (
    BlockLifetime,
    IterationMark,
    MemoryCategory,
    MemoryEvent,
    MemoryEventKind,
)
from repro.core.trace import MemoryTrace


def build_trace(event_specs, iteration_marks=(), end_ns=None):
    """Build a MemoryTrace from compact tuples.

    ``event_specs`` is an iterable of tuples
    ``(kind, timestamp_ns, block_id, size)`` or
    ``(kind, timestamp_ns, block_id, size, category, iteration)``.
    """
    events = []
    lifetimes = {}
    for index, spec in enumerate(event_specs):
        kind, timestamp, block_id, size = spec[:4]
        category = spec[4] if len(spec) > 4 else MemoryCategory.ACTIVATION
        iteration = spec[5] if len(spec) > 5 else -1
        kind = MemoryEventKind(kind) if isinstance(kind, str) else kind
        events.append(MemoryEvent(
            event_id=index, kind=kind, timestamp_ns=timestamp, block_id=block_id,
            address=0x1000 * block_id, size=size, category=category,
            tag=f"block{block_id}", iteration=iteration,
        ))
        if kind is MemoryEventKind.MALLOC:
            lifetimes[(block_id, timestamp)] = BlockLifetime(
                block_id=block_id, address=0x1000 * block_id, size=size,
                category=category, tag=f"block{block_id}", malloc_ns=timestamp,
                iteration=iteration,
            )
        elif kind is MemoryEventKind.FREE:
            for key in sorted(lifetimes, reverse=True):
                if key[0] == block_id and lifetimes[key].free_ns is None:
                    lifetimes[key].free_ns = timestamp
                    break
    marks = [IterationMark(index=i, start_ns=start, end_ns=end)
             for i, (start, end) in enumerate(iteration_marks)]
    final_ns = end_ns if end_ns is not None else (events[-1].timestamp_ns if events else 0)
    return MemoryTrace(events=events, lifetimes=list(lifetimes.values()),
                       iteration_marks=marks, end_ns=final_ns)
