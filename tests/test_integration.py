"""End-to-end integration tests crossing every subsystem."""

import numpy as np
import pytest

from repro.core import (
    MemoryEventKind,
    analyze_fragmentation,
    build_gantt_chart,
    compute_access_intervals,
    detect_iterative_pattern,
    find_outliers,
    occupation_breakdown,
    summarize_intervals,
)
from repro.core.swap import SwapPlanner
from repro.train.session import TrainingRunConfig, run_training_session
from repro.viz import render_gantt, render_stacked_bars


def test_full_pipeline_on_shared_eager_session(small_mlp_session):
    """Every paper analysis runs on one real eager training trace."""
    trace = small_mlp_session.trace
    assert len(trace) > 100

    intervals = compute_access_intervals(trace)
    summary = summarize_intervals(intervals)
    assert summary.count == len(intervals) > 50
    assert summary.p50_us > 0

    chart = build_gantt_chart(trace, max_iterations=5)
    assert chart.max_concurrent_bytes() <= small_mlp_session.peak_allocated_bytes

    patterns = detect_iterative_pattern(trace)
    assert patterns.is_iterative

    breakdown = occupation_breakdown(trace)
    assert breakdown.total_bytes == trace.peak_live_bytes()
    assert breakdown.fraction("intermediate results") > breakdown.fraction("parameters")

    fragmentation = analyze_fragmentation(trace)
    assert fragmentation.peak_reserved_bytes >= fragmentation.peak_allocated_bytes

    plan = SwapPlanner().plan(trace, intervals)
    assert plan.estimated_peak_bytes_after <= plan.peak_bytes_before

    # Rendering never raises and produces non-trivial text.
    assert len(render_gantt(chart).splitlines()) > 5


def test_losses_decrease_in_shared_session(small_mlp_session):
    losses = [loss for loss in small_mlp_session.losses() if loss is not None]
    assert len(losses) == 5
    assert losses[-1] < losses[0]


def test_trace_is_reproducible_for_identical_configs():
    config = TrainingRunConfig(model="mlp", model_kwargs={"hidden_dim": 16},
                               dataset="two_cluster", batch_size=8, iterations=2,
                               execution_mode="eager", seed=3)
    first = run_training_session(config)
    second = run_training_session(config)
    assert len(first.trace) == len(second.trace)
    first_kinds = [event.kind for event in first.trace.events]
    second_kinds = [event.kind for event in second.trace.events]
    assert first_kinds == second_kinds
    assert [event.size for event in first.trace.events] == \
        [event.size for event in second.trace.events]
    assert first.losses() == pytest.approx(second.losses())


def test_virtual_and_eager_modes_produce_equivalent_memory_behavior():
    """Memory behavior is shape-dependent, so both modes yield the same stream."""
    base = dict(model="mlp", model_kwargs={"hidden_dim": 64}, dataset="two_cluster",
                batch_size=32, iterations=2, seed=0)
    eager = run_training_session(TrainingRunConfig(execution_mode="eager", **base))
    virtual = run_training_session(TrainingRunConfig(execution_mode="virtual", **base))
    eager_stream = [(e.kind, e.size, e.category) for e in eager.trace.events]
    virtual_stream = [(e.kind, e.size, e.category) for e in virtual.trace.events]
    assert eager_stream == virtual_stream


def test_convnet_session_has_workspace_and_conv_behaviors():
    config = TrainingRunConfig(model="lenet5", dataset="mnist", batch_size=8, iterations=2,
                               execution_mode="virtual")
    result = run_training_session(config)
    ops = {event.op for event in result.trace.events if event.op}
    assert "conv2d_forward" in ops
    assert "maxpool2d_forward" in ops
    assert any(event.category.value == "workspace" for event in result.trace.events)


def test_memory_returns_to_steady_state_each_iteration(small_mlp_session):
    """Live bytes at iteration boundaries are identical from iteration 1 onward."""
    trace = small_mlp_session.trace
    live = 0
    live_at_iteration_end = {}
    for event in trace.events:
        if event.kind is MemoryEventKind.MALLOC:
            live += event.size
        elif event.kind is MemoryEventKind.FREE:
            live -= event.size
        live_at_iteration_end[event.iteration] = live
    steady_values = [live_at_iteration_end[i] for i in range(1, 5)]
    assert len(set(steady_values)) == 1


def test_outliers_scale_with_batch_size():
    """Bigger batches produce bigger long-idle blocks (the Figure-4 regime)."""
    def largest_idle_block(batch_size):
        config = TrainingRunConfig(model="mlp", model_kwargs={"hidden_dim": 2048},
                                   dataset="two_cluster", batch_size=batch_size,
                                   iterations=3, execution_mode="virtual")
        result = run_training_session(config)
        intervals = compute_access_intervals(result.trace)
        report = find_outliers(intervals, ati_threshold_ns=1_000_000,
                               size_threshold_bytes=1024)
        return max((interval.size for interval in report.outliers), default=0)

    assert largest_idle_block(256) < largest_idle_block(2048)
