"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_cli_list_prints_registries(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "paper_mlp" in out
    assert "cifar100" in out
    assert "titan_x_pascal" in out


def test_cli_profile_small_workload(capsys, tmp_path):
    trace_path = tmp_path / "trace.json"
    exit_code = main([
        "profile", "--model", "mlp", "--dataset", "two_cluster",
        "--batch-size", "16", "--iterations", "2", "--execution-mode", "virtual",
        "--save-trace", str(trace_path),
    ])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "Trace summary" in out
    assert "Occupation breakdown" in out
    assert trace_path.exists()

    from repro.core.trace import MemoryTrace
    loaded = MemoryTrace.load_json(trace_path)
    assert len(loaded) > 0
    assert loaded.iterations() == [0, 1]


def test_cli_profile_with_conv_model(capsys):
    exit_code = main([
        "profile", "--model", "lenet5", "--dataset", "mnist", "--batch-size", "4",
        "--iterations", "1", "--input-size", "28", "--num-classes", "10",
    ])
    assert exit_code == 0
    assert "peak allocated" in capsys.readouterr().out


def test_cli_figure_eq1(capsys):
    assert main(["figure", "eq1"]) == 0
    out = capsys.readouterr().out
    assert "Host to Device Bandwidth" in out
    assert "79.37" in out


def test_cli_rejects_unknown_arguments():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])
    with pytest.raises(SystemExit):
        main([])
    with pytest.raises(SystemExit):
        main(["profile", "--model", "not-a-model"])
