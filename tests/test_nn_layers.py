"""Tests for individual layers: shapes, numerics and memory discipline."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.tensor import from_numpy


def make_input(device, rng, shape):
    return from_numpy(device, rng.standard_normal(shape).astype(np.float32))


def test_linear_layer_forward_matches_manual(test_device, rng):
    layer = Linear(test_device, 3, 2, rng=rng)
    x = make_input(test_device, rng, (4, 3))
    y = layer(x)
    expected = x.numpy() @ layer.weight.values() + layer.bias.values()
    np.testing.assert_allclose(y.numpy(), expected, rtol=1e-5)


def test_linear_gradient_matches_numerical(test_device, rng):
    layer = Linear(test_device, 3, 2, rng=rng)
    x_np = rng.standard_normal((2, 3)).astype(np.float64)
    weight = layer.weight.values().astype(np.float64)
    bias = layer.bias.values().astype(np.float64)

    def loss(w):
        return ((x_np @ w + bias) ** 2).sum()

    numerical = np.zeros_like(weight)
    epsilon = 1e-6
    for index in np.ndindex(*weight.shape):
        plus, minus = weight.copy(), weight.copy()
        plus[index] += epsilon
        minus[index] -= epsilon
        numerical[index] = (loss(plus) - loss(minus)) / (2 * epsilon)

    x = from_numpy(test_device, x_np.astype(np.float32))
    y = layer(x)
    grad_out = from_numpy(test_device, (2 * y.numpy()).astype(np.float32))
    layer.backward(grad_out)
    np.testing.assert_allclose(layer.weight.grad.numpy(), numerical, rtol=1e-2, atol=1e-4)


def test_linear_without_bias(test_device, rng):
    layer = Linear(test_device, 3, 2, bias=False, rng=rng)
    assert layer.bias is None
    x = make_input(test_device, rng, (4, 3))
    y = layer(x)
    layer.backward(make_input(test_device, rng, (4, 2)))
    assert layer.weight.grad is not None


def test_conv_layer_shapes_and_grads(test_device, rng):
    layer = Conv2d(test_device, 3, 8, kernel_size=3, stride=1, padding=1, rng=rng)
    x = make_input(test_device, rng, (2, 3, 8, 8))
    y = layer(x)
    assert y.shape == (2, 8, 8, 8)
    grad_x = layer.backward(make_input(test_device, rng, (2, 8, 8, 8)))
    assert grad_x.shape == (2, 3, 8, 8)
    assert layer.weight.grad is not None
    assert layer.bias.grad is not None


def test_relu_layer_saves_output_not_input(test_device, rng):
    layer = ReLU(test_device)
    x = make_input(test_device, rng, (4, 4))
    y = layer(x)
    grad_x = layer.backward(make_input(test_device, rng, (4, 4)))
    assert grad_x.shape == (4, 4)
    # After backward the layer must have released its saved tensors.
    assert not layer.has_saved("output")


def test_maxpool_layer_round_trip(test_device, rng):
    layer = MaxPool2d(test_device, kernel_size=2, stride=2)
    x = make_input(test_device, rng, (1, 2, 8, 8))
    y = layer(x)
    assert y.shape == (1, 2, 4, 4)
    grad_x = layer.backward(make_input(test_device, rng, (1, 2, 4, 4)))
    assert grad_x.shape == (1, 2, 8, 8)


def test_avgpool_and_global_avgpool(test_device, rng):
    avg = AvgPool2d(test_device, kernel_size=2)
    x = make_input(test_device, rng, (2, 3, 8, 8))
    y = avg(x)
    assert y.shape == (2, 3, 4, 4)
    assert avg.backward(make_input(test_device, rng, (2, 3, 4, 4))).shape == (2, 3, 8, 8)

    gap = GlobalAvgPool2d(test_device)
    pooled = gap(x)
    assert pooled.shape == (2, 3, 1, 1)
    assert gap.backward(make_input(test_device, rng, (2, 3, 1, 1))).shape == (2, 3, 8, 8)


def test_batchnorm_layer_trains_and_evals(test_device, rng):
    layer = BatchNorm2d(test_device, 3)
    x = make_input(test_device, rng, (4, 3, 5, 5))
    y = layer(x)
    assert y.shape == x.shape
    grad_x = layer.backward(make_input(test_device, rng, (4, 3, 5, 5)))
    assert grad_x.shape == x.shape
    assert layer.weight.grad is not None

    layer.eval()
    y_eval = layer(x)
    assert y_eval.shape == x.shape


def test_dropout_layer_training_vs_eval(test_device, rng):
    layer = Dropout(test_device, p=0.5, seed=0)
    x = from_numpy(test_device, np.ones((64, 64), dtype=np.float32))
    y_train = layer(x)
    assert (y_train.numpy() == 0).sum() > 0
    grad = layer.backward(from_numpy(test_device, np.ones((64, 64), dtype=np.float32)))
    assert grad.shape == (64, 64)

    layer.eval()
    y_eval = layer(x)
    np.testing.assert_allclose(y_eval.numpy(), x.numpy())
    grad_eval = layer.backward(from_numpy(test_device, np.ones((64, 64), dtype=np.float32)))
    assert grad_eval.shape == (64, 64)


def test_flatten_layer_round_trip(test_device, rng):
    layer = Flatten(test_device)
    x = make_input(test_device, rng, (2, 3, 4, 4))
    y = layer(x)
    assert y.shape == (2, 48)
    grad_x = layer.backward(make_input(test_device, rng, (2, 48)))
    assert grad_x.shape == (2, 3, 4, 4)


def test_layer_backward_frees_saved_activations(test_device, rng):
    """After a forward+backward round trip no layer-internal tensors leak."""
    layer = Linear(test_device, 16, 16, rng=rng)
    x = make_input(test_device, rng, (8, 16))
    baseline = test_device.allocated_bytes
    y = layer(x)
    grad_out = make_input(test_device, rng, (8, 16))
    grad_x = layer.backward(grad_out)
    y.release()
    grad_x.release()
    grad_out.release()
    # Only the (persistent) parameter gradients may remain beyond the baseline;
    # allow the 512-byte allocator rounding per gradient block.
    persistent = sum(p.grad.nbytes for p in layer.parameters() if p.grad is not None)
    assert test_device.allocated_bytes <= baseline + persistent + 2 * 512
