"""Tests for the roofline kernel-timing model."""

import pytest

from repro.device.spec import titan_x_pascal
from repro.device.timing import (
    KernelCost,
    KernelTimingModel,
    conv2d_cost,
    elementwise_cost,
    matmul_cost,
    reduction_cost,
)


@pytest.fixture
def model():
    return KernelTimingModel(titan_x_pascal(), compute_efficiency=1.0,
                             bandwidth_efficiency=1.0, host_dispatch_overhead_ns=0)


def test_kernel_cost_bytes_moved():
    cost = KernelCost(flops=10, bytes_read=100, bytes_written=50)
    assert cost.bytes_moved == 150


def test_kernel_cost_scaled():
    cost = KernelCost(flops=10, bytes_read=100, bytes_written=50).scaled(2.0)
    assert cost.flops == 20
    assert cost.bytes_moved == 300


def test_empty_kernel_costs_only_launch_overhead(model):
    duration = model.kernel_duration_ns(KernelCost())
    assert duration == titan_x_pascal().kernel_launch_overhead_ns


def test_compute_bound_kernel_duration(model):
    spec = titan_x_pascal()
    cost = KernelCost(flops=spec.peak_flops)  # one second of peak compute
    duration = model.kernel_duration_ns(cost)
    assert duration == pytest.approx(1e9 + spec.kernel_launch_overhead_ns, rel=1e-6)


def test_memory_bound_kernel_duration(model):
    spec = titan_x_pascal()
    cost = KernelCost(bytes_read=spec.memory_bandwidth)  # one second of peak traffic
    duration = model.kernel_duration_ns(cost)
    assert duration == pytest.approx(1e9 + spec.kernel_launch_overhead_ns, rel=1e-6)


def test_roofline_takes_the_maximum(model):
    spec = titan_x_pascal()
    cost = KernelCost(flops=spec.peak_flops, bytes_read=spec.memory_bandwidth * 2)
    duration = model.kernel_duration_ns(cost)
    assert duration == pytest.approx(2e9 + spec.kernel_launch_overhead_ns, rel=1e-6)


def test_op_duration_adds_host_dispatch_overhead():
    model = KernelTimingModel(titan_x_pascal(), host_dispatch_overhead_ns=7_000)
    base = model.kernel_duration_ns(KernelCost())
    assert model.op_duration_ns(KernelCost()) == base + 7_000


def test_efficiency_must_be_in_unit_interval():
    with pytest.raises(ValueError):
        KernelTimingModel(titan_x_pascal(), compute_efficiency=0.0)
    with pytest.raises(ValueError):
        KernelTimingModel(titan_x_pascal(), bandwidth_efficiency=1.5)


def test_memcpy_duration_scales_with_bytes(model):
    slow = model.memcpy_duration_ns(10_000_000, 1e9)
    fast = model.memcpy_duration_ns(10_000_000, 10e9)
    assert slow > fast
    with pytest.raises(ValueError):
        model.memcpy_duration_ns(-1, 1e9)


def test_matmul_cost_flops():
    cost = matmul_cost(4, 8, 16)
    assert cost.flops == 2 * 4 * 8 * 16
    assert cost.bytes_written == 4 * 16 * 4


def test_elementwise_cost_counts_inputs():
    cost = elementwise_cost(100, n_inputs=3)
    assert cost.bytes_read == 100 * 4 * 3
    assert cost.bytes_written == 400


def test_conv2d_cost_flops():
    cost = conv2d_cost(batch=2, in_channels=3, out_channels=8, out_h=10, out_w=10,
                       kernel_h=3, kernel_w=3)
    assert cost.flops == 2.0 * (2 * 8 * 10 * 10) * 3 * 9


def test_reduction_cost_writes_one_element():
    cost = reduction_cost(1000)
    assert cost.bytes_written == 4
    assert cost.flops == 1000


def test_last_durations_tracks_named_kernels(model):
    model.op_duration_ns(KernelCost(flops=100, name="my_kernel"))
    assert "my_kernel" in model.last_durations()
