"""Tests for losses and optimizers."""

import numpy as np
import pytest

from repro.core.events import MemoryCategory
from repro.errors import ConfigurationError
from repro.nn import SGD, Adam, CrossEntropyLoss, Linear, MSELoss
from repro.tensor import from_numpy


def test_cross_entropy_loss_module(test_device, rng):
    loss_fn = CrossEntropyLoss(test_device)
    logits = from_numpy(test_device, rng.standard_normal((4, 3)).astype(np.float32))
    labels = from_numpy(test_device, np.array([0, 1, 2, 1], dtype=np.int64))
    loss = loss_fn(logits, labels)
    assert loss.numel == 1
    assert loss.item() > 0
    grad = loss_fn.backward()
    assert grad.shape == (4, 3)
    # Gradient rows sum to ~0 (softmax property).
    np.testing.assert_allclose(grad.numpy().sum(axis=1), np.zeros(4), atol=1e-6)


def test_mse_loss_module(test_device, rng):
    loss_fn = MSELoss(test_device)
    prediction = from_numpy(test_device, np.array([1.0, 3.0], dtype=np.float32))
    target = from_numpy(test_device, np.array([0.0, 0.0], dtype=np.float32))
    loss = loss_fn(prediction, target)
    assert loss.item() == pytest.approx(5.0)
    grad = loss_fn.backward()
    np.testing.assert_allclose(grad.numpy(), [1.0, 3.0])


def test_sgd_updates_parameters_against_gradient(test_device, rng):
    layer = Linear(test_device, 2, 2, rng=rng)
    optimizer = SGD(layer.parameters(), lr=0.1)
    before = layer.weight.values().copy()
    layer.weight.ensure_grad().set_data(np.ones(4))
    optimizer.step()
    np.testing.assert_allclose(layer.weight.values(), before - 0.1, rtol=1e-5)


def test_sgd_momentum_buffers_are_optimizer_state(test_device, rng):
    layer = Linear(test_device, 2, 2, rng=rng)
    optimizer = SGD(layer.parameters(), lr=0.1, momentum=0.9)
    assert optimizer.state_bytes() == 0
    layer.weight.ensure_grad().set_data(np.ones(4))
    layer.bias.ensure_grad().set_data(np.ones(2))
    optimizer.step()
    assert optimizer.state_bytes() == layer.weight.nbytes + layer.bias.nbytes
    buffer = optimizer._momentum_buffers[0]
    assert buffer.category is MemoryCategory.OPTIMIZER_STATE


def test_sgd_skips_parameters_without_gradients(test_device, rng):
    layer = Linear(test_device, 2, 2, rng=rng)
    optimizer = SGD(layer.parameters(), lr=0.1)
    before = layer.weight.values().copy()
    optimizer.step()                               # no gradients yet
    np.testing.assert_allclose(layer.weight.values(), before)


def test_optimizer_zero_grad(test_device, rng):
    layer = Linear(test_device, 2, 2, rng=rng)
    optimizer = SGD(layer.parameters(), lr=0.1)
    layer.weight.ensure_grad().set_data(np.ones(4))
    optimizer.zero_grad()
    np.testing.assert_allclose(layer.weight.grad.numpy(), np.zeros((2, 2)))


def test_adam_allocates_two_moments_per_parameter(test_device, rng):
    layer = Linear(test_device, 4, 4, rng=rng)
    optimizer = Adam(layer.parameters(), lr=1e-3)
    for param in layer.parameters():
        param.ensure_grad().set_data(np.ones(param.numel))
    optimizer.step()
    expected = 2 * sum(p.nbytes for p in layer.parameters())
    assert optimizer.state_bytes() == expected
    assert optimizer.step_count == 1


def test_adam_converges_on_quadratic(test_device, rng):
    layer = Linear(test_device, 1, 1, bias=False, rng=rng)
    optimizer = Adam(layer.parameters(), lr=0.1)
    for _ in range(50):
        value = layer.weight.values()[0, 0]
        layer.weight.ensure_grad().set_data(np.array([2 * value]))  # d/dw of w^2
        optimizer.step()
    assert abs(layer.weight.values()[0, 0]) < 0.2


def test_optimizer_validation():
    with pytest.raises(ConfigurationError):
        SGD([], lr=0.1)
    layer_device_error_free = None  # placeholder to keep the two checks separate


def test_optimizer_rejects_bad_hyperparameters(test_device, rng):
    layer = Linear(test_device, 2, 2, rng=rng)
    with pytest.raises(ConfigurationError):
        SGD(layer.parameters(), lr=0.0)
    with pytest.raises(ConfigurationError):
        SGD(layer.parameters(), lr=0.1, momentum=-0.5)
