"""Golden-number regression tests for the figure experiments (tiny configs).

The seconds-scale benchmark harness asserts the paper's *qualitative* claims;
these tests pin the *exact numbers* produced by scaled-down configurations of
every figure experiment, so numeric drift introduced by a ``core/`` refactor
(event columnization, ATI pairing, breakdown attribution) is caught by the
tier-1 suite immediately rather than only by the benchmarks.

The simulation is fully deterministic under a fixed seed, so integer byte
counts are compared exactly; float statistics use a tight relative tolerance
(they only depend on deterministic arithmetic, the tolerance merely absorbs
library-level reassociation).
"""

import pytest

from repro.experiments import (
    paper_mlp_config,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    small_mlp_config,
)
from repro.train.session import run_training_session

REL = 1e-9


@pytest.fixture(scope="module")
def golden_session():
    """One shared reduced paper-MLP session (batch 512, 3 virtual iterations)."""
    return run_training_session(paper_mlp_config(batch_size=512, iterations=3,
                                                 execution_mode="virtual"))


def test_fig2_golden_numbers():
    result = run_fig2(config=small_mlp_config(batch_size=16, iterations=4,
                                              hidden_dim=32), max_iterations=4)
    summary = result.summary()
    assert summary["num_rectangles"] == 56
    assert summary["num_iterations"] == 4
    assert summary["is_iterative"] is True
    assert summary["peak_live_bytes"] == 14336
    assert summary["mean_sequence_similarity"] == pytest.approx(1.0, rel=REL)
    assert summary["mean_jaccard_similarity"] == pytest.approx(1.0, rel=REL)


def test_fig3_golden_numbers(golden_session):
    result = run_fig3(session=golden_session)
    stats = result.summary_stats
    assert stats.count == 187
    assert stats.p50_us == pytest.approx(93.624, rel=REL)
    assert stats.p90_us == pytest.approx(29032.0142, rel=1e-6)
    assert stats.mean_us == pytest.approx(6087.17731016, rel=1e-6)
    assert result.fraction_below_25us == pytest.approx(61 / 187, rel=1e-6)


def test_fig4_golden_numbers(golden_session):
    result = run_fig4(session=golden_session)
    assert len(result.pairwise) == 187
    assert len(result.intervals) == 187
    assert result.outliers.count == 0  # paper-scale thresholds need the full batch
    assert len(result.top_candidates) == 10


def test_fig5_golden_numbers():
    result = run_fig5(workloads=(("lenet5", "lenet5", "mnist", 16, 28),))
    row = result.rows()[0]
    assert row["total_bytes"] == 1785856
    assert row["input data"] == pytest.approx(0.028383027523, rel=1e-6)
    assert row["parameters"] == pytest.approx(0.201834862385, rel=1e-6)
    assert row["intermediate results"] == pytest.approx(0.769782110092, rel=1e-6)


def test_fig6_golden_numbers():
    result = run_fig6(batch_sizes=(16, 32), input_size=32, num_classes=100)
    rows = result.rows()
    assert [row["batch_size"] for row in rows] == [16, 32]
    assert rows[0]["total_bytes"] == 292385792
    assert rows[1]["total_bytes"] == 301763584
    assert rows[0]["parameters"] == pytest.approx(0.647634424042, rel=1e-6)
    assert rows[1]["parameters"] == pytest.approx(0.633589081445, rel=1e-6)
    assert rows[0]["intermediate results"] == pytest.approx(0.351691398192, rel=1e-6)
    assert rows[1]["intermediate results"] == pytest.approx(0.365106162048, rel=1e-6)


def test_fig7_golden_numbers():
    result = run_fig7(depths=("resnet18",), batch_size=2)
    row = result.rows()[0]
    assert row["depth"] == "resnet18"
    assert row["total_bytes"] == 191209472
    assert row["input data"] == pytest.approx(0.006300608372, rel=1e-6)
    assert row["parameters"] == pytest.approx(0.494505376805, rel=1e-6)
    assert row["intermediate results"] == pytest.approx(0.499194014824, rel=1e-6)


def test_fig6_numbers_identical_through_cached_engine(tmp_path):
    """The sweep engine's cache round-trip must not perturb figure numbers."""
    from repro.experiments.sweep import SweepRunner

    direct = run_fig6(batch_sizes=(16,), input_size=32, num_classes=100)
    runner = SweepRunner(cache_dir=tmp_path / "sweeps")
    warm = run_fig6(batch_sizes=(16,), input_size=32, num_classes=100, runner=runner)
    cached = run_fig6(batch_sizes=(16,), input_size=32, num_classes=100, runner=runner)
    assert warm.rows() == direct.rows()
    assert cached.rows() == direct.rows()
