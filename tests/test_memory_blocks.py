"""Tests for device memory blocks, segments and allocator statistics."""

import pytest

from repro.device.memory import AllocatorStats, Block, Segment
from repro.errors import AllocatorStateError


def test_segment_starts_with_one_covering_free_block():
    segment = Segment(address=0x1000, size=4096, pool="small")
    blocks = list(segment.blocks())
    assert len(blocks) == 1
    assert blocks[0].address == 0x1000
    assert blocks[0].size == 4096
    assert not blocks[0].allocated
    assert segment.is_fully_free()


def test_segment_byte_accounting():
    segment = Segment(address=0, size=1024, pool="small")
    block = segment.first_block
    block.allocated = True
    assert segment.allocated_bytes() == 1024
    assert segment.free_bytes() == 0
    assert segment.largest_free_block() == 0


def test_block_end_address():
    segment = Segment(address=0x100, size=256, pool="small")
    assert segment.first_block.end_address == 0x100 + 256


def test_block_ids_are_unique():
    segment = Segment(address=0, size=512, pool="small")
    other = Segment(address=1024, size=512, pool="small")
    assert segment.first_block.block_id != other.first_block.block_id


def test_check_invariants_detects_gap():
    segment = Segment(address=0, size=1024, pool="small")
    segment.first_block.size = 512  # now the block list does not cover the segment
    with pytest.raises(AllocatorStateError):
        segment.check_invariants()


def test_check_invariants_detects_broken_links():
    segment = Segment(address=0, size=1024, pool="small")
    first = segment.first_block
    tail = Block(segment=segment, address=512, size=512)
    first.size = 512
    first.next = tail
    tail.prev = None  # broken back link
    with pytest.raises(AllocatorStateError):
        segment.check_invariants()


def test_allocator_stats_track_peaks():
    stats = AllocatorStats()
    stats.on_reserve(1000)
    stats.on_alloc(600)
    stats.on_alloc(300)
    stats.on_free(600)
    assert stats.allocated_bytes == 300
    assert stats.peak_allocated_bytes == 900
    assert stats.active_blocks == 1
    assert stats.peak_active_blocks == 2
    assert stats.reserved_bytes == 1000
    stats.on_release(1000)
    assert stats.reserved_bytes == 0
    assert stats.peak_reserved_bytes == 1000


def test_allocator_stats_to_dict_contains_all_counters():
    stats = AllocatorStats()
    data = stats.to_dict()
    expected_keys = {"allocated_bytes", "reserved_bytes", "active_blocks",
                     "peak_allocated_bytes", "peak_reserved_bytes", "peak_active_blocks",
                     "total_alloc_count", "total_free_count", "total_alloc_bytes",
                     "cache_hits", "cache_misses", "segment_allocs", "segment_frees",
                     "split_count", "coalesce_count"}
    assert expected_keys == set(data)
