"""Tests for unit conversion and formatting helpers."""

import pytest

from repro import units


def test_size_constants_are_consistent():
    assert units.MIB == 1024 * units.KIB
    assert units.GIB == 1024 * units.MIB
    assert units.GB == 1000 * units.MB


def test_time_conversions_round_trip():
    assert units.us_to_ns(25) == 25_000
    assert units.ms_to_ns(1.5) == 1_500_000
    assert units.s_to_ns(0.8) == 800_000_000
    assert units.ns_to_us(25_000) == pytest.approx(25.0)
    assert units.ns_to_ms(1_500_000) == pytest.approx(1.5)
    assert units.ns_to_s(800_000_000) == pytest.approx(0.8)


def test_bandwidth_conversions_round_trip():
    bpn = units.gbps_to_bytes_per_ns(6.4)
    assert units.bytes_per_ns_to_gbps(bpn) == pytest.approx(6.4)


def test_format_bytes_picks_adaptive_units():
    assert units.format_bytes(512) == "512 B"
    assert units.format_bytes(2048) == "2.00 KiB"
    assert units.format_bytes(3 * units.MIB) == "3.00 MiB"
    assert units.format_bytes(int(1.5 * units.GIB)) == "1.50 GiB"


def test_format_bytes_handles_negative_values():
    assert units.format_bytes(-2048) == "-2.00 KiB"


def test_format_duration_picks_adaptive_units():
    assert units.format_duration(500) == "500 ns"
    assert units.format_duration(25_000) == "25.000 us"
    assert units.format_duration(1_500_000) == "1.500 ms"
    assert units.format_duration(2_000_000_000) == "2.000 s"


def test_us_to_ns_rounds_fractions():
    assert units.us_to_ns(0.5) == 500
    assert units.us_to_ns(0.0001) == 0
