"""Tests for device specifications."""

import pytest

from repro.device.spec import (
    DEVICE_PRESETS,
    DeviceSpec,
    ampere_a100_40gb,
    get_device_spec,
    small_test_device,
    titan_x_pascal,
)
from repro.units import GIB


def test_titan_x_pascal_matches_paper_testbed():
    spec = titan_x_pascal()
    assert spec.memory_capacity == 12 * GIB
    assert spec.h2d_bandwidth == pytest.approx(6.3e9)
    assert spec.d2h_bandwidth == pytest.approx(6.4e9)
    assert "Titan X" in spec.name


def test_ampere_preset_has_40gb():
    assert ampere_a100_40gb().memory_capacity == 40 * GIB


def test_get_device_spec_by_name():
    for name in DEVICE_PRESETS:
        spec = get_device_spec(name)
        assert isinstance(spec, DeviceSpec)


def test_get_device_spec_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown device preset"):
        get_device_spec("does-not-exist")


def test_with_memory_capacity_returns_modified_copy():
    spec = titan_x_pascal()
    bigger = spec.with_memory_capacity(48 * GIB)
    assert bigger.memory_capacity == 48 * GIB
    assert spec.memory_capacity == 12 * GIB
    assert bigger.name == spec.name


def test_spec_validation_rejects_nonpositive_values():
    with pytest.raises(ValueError):
        DeviceSpec(name="bad", memory_capacity=0, peak_flops=1e12,
                   memory_bandwidth=1e9, h2d_bandwidth=1e9, d2h_bandwidth=1e9)
    with pytest.raises(ValueError):
        DeviceSpec(name="bad", memory_capacity=1, peak_flops=-1,
                   memory_bandwidth=1e9, h2d_bandwidth=1e9, d2h_bandwidth=1e9)
    with pytest.raises(ValueError):
        DeviceSpec(name="bad", memory_capacity=1, peak_flops=1e12,
                   memory_bandwidth=1e9, h2d_bandwidth=0, d2h_bandwidth=1e9)


def test_spec_to_dict_round_trips_key_fields():
    spec = small_test_device()
    data = spec.to_dict()
    assert data["memory_capacity"] == spec.memory_capacity
    assert data["name"] == spec.name
    assert data["h2d_bandwidth"] == spec.h2d_bandwidth


def test_spec_is_frozen():
    spec = titan_x_pascal()
    with pytest.raises(Exception):
        spec.memory_capacity = 1
