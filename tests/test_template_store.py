"""Tests for the content-addressed template store (``index.json`` + npz files).

The store gives the replay engine O(1) lookup by template key, bounds the
cache with an LRU over a monotonic sequence counter, and publishes families
atomically (temp file + ``os.replace``) so a crashed or concurrent writer can
never leave a torn archive behind.  The manifest is advisory: a missing or
corrupt ``index.json`` must never lose templates that are still on disk.
"""

import json

from repro.experiments.replay import TemplateFamily, template_key
from repro.experiments.template_store import (
    DEFAULT_MAX_ENTRIES,
    INDEX_NAME,
    TemplateStore,
)
from repro.train.session import TrainingRunConfig


def make_family(dtypes=("float32",), **overrides):
    settings = dict(model="mlp", model_kwargs={"hidden_dim": 32},
                    dataset="two_cluster", batch_size=16, iterations=2,
                    execution_mode="symbolic", seed=3)
    settings.update(overrides)
    configs = [TrainingRunConfig(**{**settings, "dtype": dtype})
               for dtype in dtypes]
    family = TemplateFamily(template_key(configs[0]))
    for config in configs:
        family.capture(config)
    return family


def test_publish_writes_manifest_entry_and_npz(tmp_path):
    store = TemplateStore(tmp_path)
    family = make_family(dtypes=("float32", "float16"))
    store.publish(family)

    path = store.path_for(family.key)
    assert path.is_file()
    index = json.loads((tmp_path / INDEX_NAME).read_text())
    entry = index["entries"][family.key]
    assert entry["file"] == path.name
    assert entry["bytes"] == path.stat().st_size
    assert entry["dtypes"] == ["float16", "float32"]
    assert entry["seq"] < index["next_seq"]


def test_publish_leaves_no_temp_files(tmp_path):
    store = TemplateStore(tmp_path)
    store.publish(make_family())
    names = sorted(p.name for p in tmp_path.iterdir())
    assert names == sorted([INDEX_NAME,
                            store.path_for(make_family().key).name])


def test_load_round_trips_the_family(tmp_path):
    store = TemplateStore(tmp_path)
    family = make_family(dtypes=("float32", "float16"))
    store.publish(family)

    loaded = TemplateStore(tmp_path).load(family.key)
    assert loaded is not None
    assert loaded.key == family.key
    assert loaded.captured_dtypes() == ["float16", "float32"]
    assert not loaded.compiled_fresh  # a store hit is not a fresh compile


def test_load_miss_returns_none(tmp_path):
    assert TemplateStore(tmp_path).load("no-such-key") is None


def test_lru_eviction_bounds_the_store(tmp_path):
    store = TemplateStore(tmp_path, max_entries=2)
    families = [make_family(batch_size=size) for size in (4, 8, 16)]
    for family in families:
        store.publish(family)

    kept = set(store.keys())
    assert families[0].key not in kept  # oldest evicted
    assert {families[1].key, families[2].key} == kept
    assert not store.path_for(families[0].key).exists()


def test_load_touch_protects_entries_from_eviction(tmp_path):
    store = TemplateStore(tmp_path, max_entries=2)
    first, second = make_family(batch_size=4), make_family(batch_size=8)
    store.publish(first)
    store.publish(second)
    assert store.load(first.key) is not None  # LRU-touch: first becomes newest

    third = make_family(batch_size=16)
    store.publish(third)
    assert set(store.keys()) == {first.key, third.key}  # second was the victim


def test_corrupt_manifest_recovers_from_the_directory(tmp_path):
    store = TemplateStore(tmp_path)
    family = make_family()
    store.publish(family)
    (tmp_path / INDEX_NAME).write_text("{ not json")

    fresh = TemplateStore(tmp_path)
    assert fresh.load(family.key) is not None  # directory probe wins


def test_corrupt_npz_is_dropped_from_the_manifest(tmp_path):
    store = TemplateStore(tmp_path)
    family = make_family()
    store.publish(family)
    store.path_for(family.key).write_bytes(b"torn archive")

    fresh = TemplateStore(tmp_path)
    assert fresh.load(family.key) is None
    assert family.key not in fresh.read_index()["entries"]


def test_default_capacity_is_sane():
    assert DEFAULT_MAX_ENTRIES >= 16
