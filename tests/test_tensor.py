"""Tests for the Tensor type and its factory helpers."""

import numpy as np
import pytest

from repro.core.events import MemoryCategory
from repro.errors import ShapeError, TensorError
from repro.tensor import arange_labels, empty, from_numpy, full, randn, zeros
from repro.tensor.dtype import float32, int64


def test_empty_tensor_shape_and_bytes(test_device):
    tensor = empty(test_device, (4, 8), tag="x")
    assert tensor.shape == (4, 8)
    assert tensor.numel == 32
    assert tensor.nbytes == 128
    assert tensor.ndim == 2
    assert tensor.block_id is not None


def test_scalar_shape_normalization(test_device):
    tensor = empty(test_device, 5)
    assert tensor.shape == (5,)
    with pytest.raises(ShapeError):
        empty(test_device, (-1, 3))


def test_zeros_and_full(test_device):
    z = zeros(test_device, (3, 3))
    np.testing.assert_allclose(z.numpy(), np.zeros((3, 3)))
    f = full(test_device, (2, 2), 7.5)
    np.testing.assert_allclose(f.numpy(), np.full((2, 2), 7.5))


def test_randn_is_deterministic_with_rng(test_device, rng):
    import numpy as np
    a = randn(test_device, (10,), rng=np.random.default_rng(7))
    b = randn(test_device, (10,), rng=np.random.default_rng(7))
    np.testing.assert_allclose(a.numpy(), b.numpy())


def test_from_numpy_preserves_values_and_dtype(test_device):
    array = np.arange(6, dtype=np.float32).reshape(2, 3)
    tensor = from_numpy(test_device, array, category=MemoryCategory.INPUT)
    assert tensor.shape == (2, 3)
    assert tensor.dtype is float32
    np.testing.assert_allclose(tensor.numpy(), array)
    labels = from_numpy(test_device, np.array([1, 2, 3], dtype=np.int64))
    assert labels.dtype is int64


def test_from_numpy_with_h2d_staging_advances_clock(test_device):
    before = test_device.clock.now_ns
    from_numpy(test_device, np.zeros((64, 64), dtype=np.float32), stage_h2d=True)
    assert test_device.clock.now_ns > before


def test_reshape_shares_storage(test_device):
    tensor = from_numpy(test_device, np.arange(12, dtype=np.float32))
    view = tensor.reshape((3, 4))
    assert view.storage is tensor.storage
    assert view.shape == (3, 4)
    with pytest.raises(ShapeError):
        tensor.reshape((5, 5))
    # Releasing the original keeps the storage alive through the view.
    tensor.release()
    assert not view.is_freed
    view.release()
    assert view.is_freed


def test_flatten_batch(test_device):
    tensor = empty(test_device, (2, 3, 4, 4))
    flat = tensor.flatten_batch()
    assert flat.shape == (2, 48)
    with pytest.raises(ShapeError):
        empty(test_device, (5,)).flatten_batch()


def test_item_requires_single_element(test_device):
    scalar = full(test_device, (1,), 3.0)
    assert scalar.item() == pytest.approx(3.0)
    with pytest.raises(TensorError):
        empty(test_device, (2,)).item()


def test_set_data_validates_size(test_device):
    tensor = empty(test_device, (2, 2))
    tensor.set_data(np.ones(4))
    np.testing.assert_allclose(tensor.numpy(), np.ones((2, 2)))
    with pytest.raises(ShapeError):
        tensor.set_data(np.ones(5))


def test_copy_to_host_returns_values_in_eager_mode(test_device):
    tensor = full(test_device, (2,), 1.5)
    values = tensor.copy_to_host()
    np.testing.assert_allclose(values, [1.5, 1.5])


def test_copy_to_host_returns_none_in_virtual_mode(virtual_device):
    tensor = empty(virtual_device, (2,))
    assert tensor.copy_to_host() is None


def test_arange_labels_in_range(test_device):
    labels = arange_labels(test_device, batch=16, num_classes=4)
    values = labels.numpy()
    assert values.shape == (16,)
    assert values.min() >= 0
    assert values.max() < 4
