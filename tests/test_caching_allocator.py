"""Tests for the PyTorch-style caching allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import MemoryCategory
from repro.device.allocator import (
    CachingAllocator,
    LARGE_SEGMENT_SIZE,
    MIN_BLOCK_SIZE,
    SMALL_ALLOCATION_LIMIT,
    SMALL_SEGMENT_SIZE,
    make_allocator,
    round_block_size,
    segment_size_for,
)
from repro.device.clock import DeviceClock
from repro.device.hooks import CountingListener
from repro.device.spec import small_test_device
from repro.errors import InvalidFreeError, OutOfMemoryError
from repro.units import KIB, MIB


def make_caching_allocator(capacity=256 * MIB, listener=None):
    return CachingAllocator(small_test_device(capacity), DeviceClock(), listener)


# -- size rounding and segment sizing --------------------------------------------------


def test_round_block_size_rounds_up_to_512():
    assert round_block_size(1) == 512
    assert round_block_size(512) == 512
    assert round_block_size(513) == 1024
    assert round_block_size(0) == MIN_BLOCK_SIZE


def test_segment_size_for_small_and_large_requests():
    assert segment_size_for(1024) == SMALL_SEGMENT_SIZE
    assert segment_size_for(SMALL_ALLOCATION_LIMIT) == SMALL_SEGMENT_SIZE
    assert segment_size_for(2 * MIB) == LARGE_SEGMENT_SIZE
    huge = 64 * MIB + 3
    assert segment_size_for(huge) >= huge
    assert segment_size_for(huge) % (2 * MIB) == 0


# -- basic allocation -------------------------------------------------------------------


def test_allocate_returns_rounded_block_with_metadata():
    allocator = make_caching_allocator()
    block = allocator.allocate(1000, category=MemoryCategory.PARAMETER, tag="w")
    assert block.allocated
    assert block.size == 1024
    assert block.requested_size == 1000
    assert block.category is MemoryCategory.PARAMETER
    assert block.tag == "w"
    assert allocator.allocated_bytes == 1024


def test_small_allocations_share_one_segment():
    allocator = make_caching_allocator()
    for _ in range(10):
        allocator.allocate(10 * KIB)
    assert allocator.stats.segment_allocs == 1
    assert allocator.reserved_bytes == SMALL_SEGMENT_SIZE


def test_free_and_reuse_keeps_block_identity():
    allocator = make_caching_allocator()
    block = allocator.allocate(64 * KIB, tag="a")
    identity = block.block_id
    allocator.free(block)
    reused = allocator.allocate(64 * KIB, tag="b")
    assert reused.block_id == identity
    assert reused.tag == "b"
    assert allocator.stats.cache_hits >= 1


def test_best_fit_prefers_smallest_sufficient_block():
    allocator = make_caching_allocator()
    small = allocator.allocate(2 * MIB)       # large pool
    big = allocator.allocate(8 * MIB)
    allocator.free(small)
    allocator.free(big)
    reused = allocator.allocate(2 * MIB)
    assert reused.size <= 8 * MIB
    assert reused.block_id == small.block_id


def test_splitting_keeps_remainder_available():
    allocator = make_caching_allocator()
    block = allocator.allocate(512 * KIB)     # small pool, 2 MiB segment
    assert block.size == 512 * KIB
    second = allocator.allocate(512 * KIB)
    # Both fit in the same 2 MiB segment thanks to splitting.
    assert allocator.stats.segment_allocs == 1
    assert second.address >= block.end_address


def test_coalescing_merges_free_neighbours():
    allocator = make_caching_allocator()
    blocks = [allocator.allocate(256 * KIB) for _ in range(4)]
    for block in blocks:
        allocator.free(block)
    # After freeing everything the segment should hold one fully merged block.
    segment = allocator.segments()[0]
    assert segment.is_fully_free()
    free_blocks = [b for b in segment.blocks() if not b.allocated]
    assert len(free_blocks) == 1
    assert free_blocks[0].size == SMALL_SEGMENT_SIZE
    assert allocator.stats.coalesce_count >= 3


def test_double_free_raises():
    allocator = make_caching_allocator()
    block = allocator.allocate(1024)
    allocator.free(block)
    with pytest.raises(InvalidFreeError):
        allocator.free(block)


def test_out_of_memory_raises_with_details():
    allocator = make_caching_allocator(capacity=32 * MIB)
    allocator.allocate(20 * MIB)
    with pytest.raises(OutOfMemoryError) as excinfo:
        allocator.allocate(30 * MIB)
    assert excinfo.value.capacity == 32 * MIB


def test_oom_retries_after_releasing_cache():
    allocator = make_caching_allocator(capacity=64 * MIB)
    block = allocator.allocate(40 * MIB)
    allocator.free(block)  # cached, not released
    # A different-size allocation cannot reuse the cached block directly but the
    # allocator should release the cached segment and retry instead of failing.
    big = allocator.allocate(50 * MIB)
    assert big.size >= 50 * MIB


def test_empty_cache_releases_fully_free_segments():
    allocator = make_caching_allocator()
    block = allocator.allocate(4 * MIB)
    allocator.free(block)
    reserved_before = allocator.reserved_bytes
    released = allocator.empty_cache()
    assert released == reserved_before
    assert allocator.reserved_bytes == 0


def test_listener_receives_malloc_and_free():
    listener = CountingListener()
    allocator = make_caching_allocator(listener=listener)
    block = allocator.allocate(1024)
    allocator.free(block)
    assert listener.mallocs == 1
    assert listener.frees == 1
    assert listener.segment_allocs == 1


def test_allocation_advances_the_clock():
    allocator = make_caching_allocator()
    start = allocator.clock.now_ns
    allocator.allocate(1024)
    assert allocator.clock.now_ns > start


def test_memory_snapshot_structure():
    allocator = make_caching_allocator()
    allocator.allocate(1024, tag="x")
    snapshot = allocator.memory_snapshot()
    assert len(snapshot) == 1
    assert snapshot[0]["pool"] == "small"
    assert any(entry["allocated"] for entry in snapshot[0]["blocks"])


def test_make_allocator_unknown_name():
    with pytest.raises(KeyError, match="unknown allocator"):
        make_allocator("nope", small_test_device(), DeviceClock())


# -- property-based: random workloads keep the allocator consistent -----------------------


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=4 * MIB), min_size=1, max_size=40),
       st.data())
def test_random_alloc_free_sequences_preserve_invariants(sizes, data):
    allocator = make_caching_allocator(capacity=512 * MIB)
    live = []
    for size in sizes:
        # Randomly interleave frees of previously allocated blocks.
        if live and data.draw(st.booleans()):
            index = data.draw(st.integers(min_value=0, max_value=len(live) - 1))
            allocator.free(live.pop(index))
        block = allocator.allocate(size)
        assert block.size >= size
        live.append(block)
        allocator.check_invariants()
        # No two live blocks overlap in the address space.
        spans = sorted((b.address, b.end_address) for b in allocator.live_blocks())
        for (_, first_end), (second_start, _) in zip(spans, spans[1:]):
            assert first_end <= second_start
    for block in live:
        allocator.free(block)
    allocator.check_invariants()
    assert allocator.allocated_bytes == 0


# -- the indexed free list (PR 4) ---------------------------------------------------


def test_indexed_free_list_fifo_tiebreak_matches_linear_scan_order():
    from repro.device.allocator import IndexedFreeList
    from repro.device.memory import Block, Segment

    segment = Segment(address=0x1000, size=8192, pool="small")
    blocks = [Block(segment=segment, address=0x1000 + i * 1024, size=1024)
              for i in range(4)]
    index = IndexedFreeList("fifo")
    for block in blocks:
        index.add(block)
    # Equal sizes: oldest insertion wins, exactly like the old first-match scan.
    assert index.take_best_fit(512) is blocks[0]
    assert index.take_best_fit(1024) is blocks[1]
    assert len(index) == 2 and blocks[2] in index


def test_indexed_free_list_address_tiebreak_and_best_fit():
    from repro.device.allocator import IndexedFreeList
    from repro.device.memory import Block, Segment

    segment = Segment(address=0x1000, size=1 << 20, pool="arena")
    small_hi = Block(segment=segment, address=0x9000, size=2048)
    small_lo = Block(segment=segment, address=0x3000, size=2048)
    large = Block(segment=segment, address=0x1000, size=8192)
    index = IndexedFreeList("address")
    for block in (small_hi, small_lo, large):
        index.add(block)
    # Best fit picks the smallest sufficient size; ties go to the lower address.
    assert index.take_best_fit(1024) is small_lo
    assert index.take_best_fit(4096) is large
    assert index.take_best_fit(4096) is None


def test_indexed_free_list_discard_is_exact():
    from repro.device.allocator import IndexedFreeList
    from repro.device.memory import Block, Segment

    segment = Segment(address=0x1000, size=8192, pool="small")
    a = Block(segment=segment, address=0x1000, size=1024)
    b = Block(segment=segment, address=0x1400, size=1024)
    index = IndexedFreeList("fifo")
    index.add(a)
    index.add(b)
    assert index.discard(a) is True
    assert index.discard(a) is False       # idempotent
    assert a not in index and b in index
    assert index.take_best_fit(1024) is b


def test_indexed_free_list_rejects_unknown_tiebreak():
    import pytest as _pytest

    from repro.device.allocator import IndexedFreeList

    with _pytest.raises(ValueError):
        IndexedFreeList("lifo")
