"""Property-based tests over trace-level invariants of the whole stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ati import compute_access_intervals
from repro.core.events import MemoryEventKind
from repro.core.profiler import MemoryProfiler
from repro.core.trace import MemoryTrace
from repro.device import Device, small_test_device
from repro.models import MLP
from repro.nn import SGD, CrossEntropyLoss
from repro.tensor import from_numpy


def run_tiny_training(hidden_dim, batch_size, iterations):
    """Train a tiny MLP in virtual mode and return the trace."""
    device = Device(small_test_device(1 << 30), execution_mode="virtual")
    profiler = MemoryProfiler(device)
    with profiler:
        model = MLP(device, hidden_dim=hidden_dim, rng=np.random.default_rng(0))
        loss_fn = CrossEntropyLoss(device)
        optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)
        rng = np.random.default_rng(0)
        for iteration in range(iterations):
            profiler.begin_iteration(iteration)
            x = from_numpy(device, rng.standard_normal((batch_size, 2)).astype(np.float32),
                           tag="input")
            labels = from_numpy(device, rng.integers(0, 2, batch_size).astype(np.int64),
                                tag="labels")
            logits = model(x)
            loss = loss_fn(logits, labels)
            logits.release()
            optimizer.zero_grad()
            grad = loss_fn.backward()
            model.backward(grad).release()
            grad.release()
            optimizer.step()
            loss.release()
            x.release()
            labels.release()
            profiler.end_iteration(iteration)
    return profiler.trace()


def check_trace_invariants(trace: MemoryTrace):
    """Invariants that must hold for every recorded trace."""
    # 1. Event ids and timestamps are monotonically non-decreasing.
    ids = [event.event_id for event in trace.events]
    assert ids == sorted(ids)
    times = [event.timestamp_ns for event in trace.events]
    assert all(b >= a for a, b in zip(times, times[1:]))

    # 2. Per block: first event is a malloc, accesses only while allocated,
    #    frees alternate with mallocs.
    for block_id, events in trace.events_by_block().items():
        allocated = False
        for event in events:
            if event.kind is MemoryEventKind.MALLOC:
                assert not allocated, f"double malloc on block {block_id}"
                allocated = True
            elif event.kind is MemoryEventKind.FREE:
                assert allocated, f"free of unallocated block {block_id}"
                allocated = False
            else:
                assert allocated, f"access to unallocated block {block_id}"

    # 3. Live bytes never go negative and the peak matches the reported peak.
    live = 0
    peak = 0
    for event in trace.events:
        if event.kind is MemoryEventKind.MALLOC:
            live += event.size
        elif event.kind is MemoryEventKind.FREE:
            live -= event.size
        assert live >= 0
        peak = max(peak, live)
    assert peak == trace.peak_live_bytes()

    # 4. Every access interval is non-negative and pairs events of the same block.
    if trace.events:
        for interval in compute_access_intervals(trace):
            assert interval.interval_ns >= 0
            assert interval.start_event_id < interval.end_event_id


@settings(max_examples=8, deadline=None)
@given(hidden_dim=st.sampled_from([8, 32, 128]),
       batch_size=st.sampled_from([4, 16, 64]),
       iterations=st.integers(min_value=1, max_value=4))
def test_training_traces_always_satisfy_invariants(hidden_dim, batch_size, iterations):
    trace = run_tiny_training(hidden_dim, batch_size, iterations)
    assert len(trace) > 0
    check_trace_invariants(trace)
    assert trace.iterations() == list(range(iterations))


def test_invariants_hold_on_shared_sessions(small_mlp_session, paper_mlp_session):
    check_trace_invariants(small_mlp_session.trace)
    check_trace_invariants(paper_mlp_session.trace)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=1, max_value=1 << 20),
                          st.booleans()), min_size=1, max_size=60))
def test_device_allocation_roundtrip_property(requests):
    """Allocating and freeing arbitrary sizes always returns to zero allocated bytes."""
    device = Device(small_test_device(1 << 28), execution_mode="virtual")
    live = []
    for size, free_something in requests:
        if free_something and live:
            device.free(live.pop())
        live.append(device.allocate(size))
    for block in live:
        device.free(block)
    assert device.allocated_bytes == 0
    assert device.peak_allocated_bytes > 0
