"""Tier-1 test suite (a package so helpers import unambiguously).

Making ``tests`` a package means test modules import as ``tests.test_*`` and
shared helpers import as ``tests.helpers`` — the flat ``from conftest import
...`` style is forbidden because it resolves against whichever conftest
module pytest imported first (historically ``benchmarks/conftest.py``,
breaking collection of four modules).
"""
