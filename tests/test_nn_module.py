"""Tests for the Module base class, Parameter and Sequential."""

import numpy as np
import pytest

from repro.errors import BackwardBeforeForwardError
from repro.nn import Identity, Linear, Parameter, ReLU, Sequential
from repro.nn.module import Module
from repro.tensor import from_numpy, randn


def test_parameter_allocates_and_lazily_creates_grad(test_device):
    param = Parameter(test_device, (4, 4), name="w")
    assert param.grad is None
    grad = param.ensure_grad()
    assert grad.shape == (4, 4)
    assert param.ensure_grad() is grad        # idempotent
    np.testing.assert_allclose(grad.numpy(), np.zeros((4, 4)))
    param.set_values(np.ones(16))
    np.testing.assert_allclose(param.values(), np.ones((4, 4)))


def test_parameter_zero_grad_noop_without_grad(test_device):
    param = Parameter(test_device, (2,), name="b")
    param.zero_grad()                         # no error
    param.ensure_grad().set_data(np.ones(2))
    param.zero_grad()
    np.testing.assert_allclose(param.grad.numpy(), np.zeros(2))


def test_module_auto_registers_parameters_and_children(test_device):
    class Custom(Module):
        def __init__(self, device):
            super().__init__(device)
            self.weight = Parameter(device, (2, 2), name="w")
            self.child = Identity(device)

        def forward(self, x):
            return x.retain()

    module = Custom(test_device)
    assert [name for name, _ in module.named_parameters()] == ["weight"]
    assert len(module.children()) == 1
    assert len(module.modules()) == 2


def test_named_parameters_are_qualified(test_device):
    model = Sequential(test_device, [Linear(test_device, 2, 3, name="fc1"),
                                     Linear(test_device, 3, 1, name="fc2")])
    names = [name for name, _ in model.named_parameters()]
    assert names == ["layer0.weight", "layer0.bias", "layer1.weight", "layer1.bias"]
    assert model.parameter_count() == 2 * 3 + 3 + 3 * 1 + 1


def test_train_eval_propagates(test_device):
    model = Sequential(test_device, [ReLU(test_device), ReLU(test_device)])
    model.eval()
    assert all(not layer.training for layer in model.layers)
    model.train()
    assert all(layer.training for layer in model.layers)


def test_save_for_backward_retains_and_releases(test_device):
    module = Identity(test_device)
    tensor = randn(test_device, (4,))
    module.save_for_backward(x=tensor)
    tensor.release()                          # saved reference keeps it alive
    assert not tensor.is_freed
    assert module.saved("x") is tensor
    module.release_saved()
    assert tensor.is_freed


def test_saved_unknown_key_raises(test_device):
    module = Identity(test_device)
    with pytest.raises(BackwardBeforeForwardError):
        module.saved("missing")
    assert not module.has_saved("missing")


def test_sequential_forward_backward_shapes(test_device, rng):
    model = Sequential(test_device, [
        Linear(test_device, 4, 8, name="fc1", rng=rng),
        ReLU(test_device),
        Linear(test_device, 8, 2, name="fc2", rng=rng),
    ])
    x = from_numpy(test_device, rng.standard_normal((5, 4)).astype(np.float32))
    y = model(x)
    assert y.shape == (5, 2)
    grad = from_numpy(test_device, np.ones((5, 2), dtype=np.float32))
    grad_x = model.backward(grad)
    assert grad_x.shape == (5, 4)
    for param in model.parameters():
        assert param.grad is not None


def test_sequential_indexing_and_len(test_device):
    layers = [ReLU(test_device), ReLU(test_device)]
    model = Sequential(test_device, layers)
    assert len(model) == 2
    assert model[0] is layers[0]


def test_empty_sequential_is_identity(test_device):
    model = Sequential(test_device, [])
    x = randn(test_device, (3,))
    y = model(x)
    assert y.storage is x.storage


def test_zero_grad_zeroes_existing_gradients(test_device, rng):
    layer = Linear(test_device, 3, 2, rng=rng)
    x = from_numpy(test_device, rng.standard_normal((4, 3)).astype(np.float32))
    y = layer(x)
    layer.backward(from_numpy(test_device, np.ones((4, 2), dtype=np.float32)))
    assert np.abs(layer.weight.grad.numpy()).sum() > 0
    layer.zero_grad()
    np.testing.assert_allclose(layer.weight.grad.numpy(), np.zeros((3, 2)))


def test_module_free_releases_device_memory(test_device):
    allocated_before = test_device.allocated_bytes
    layer = Linear(test_device, 8, 8)
    assert test_device.allocated_bytes > allocated_before
    layer.free()
    assert test_device.allocated_bytes == allocated_before


def test_parameter_bytes_and_buffer_bytes(test_device):
    from repro.nn import BatchNorm2d
    bn = BatchNorm2d(test_device, 4)
    assert bn.parameter_bytes() == 2 * 4 * 4          # gamma + beta, float32
    assert bn.buffer_bytes() == 2 * 4 * 4             # running mean + var
