"""Tests for the swapping/recompute/compression baseline policies."""

import pytest

from repro.baselines import (
    estimate_pruning,
    estimate_quantization,
    estimate_recompute_plan,
    swap_advisor_style_policy,
    zero_offload_style_policy,
)
from repro.core.events import MemoryCategory
from repro.units import MIB, s_to_ns

from tests.helpers import build_trace


def make_training_like_trace():
    """Parameters + optimizer state + a large activation per iteration."""
    us = 1_000
    events = [
        ("malloc", 0, 1, 8 * MIB, MemoryCategory.PARAMETER, -1),
        ("malloc", 1 * us, 2, 8 * MIB, MemoryCategory.OPTIMIZER_STATE, -1),
        ("malloc", 2 * us, 3, 8 * MIB, MemoryCategory.PARAMETER_GRADIENT, -1),
    ]
    marks = []
    for iteration in range(3):
        base = (iteration + 1) * 1_000_000_000
        events += [
            ("malloc", base, 10, 512 * MIB, MemoryCategory.ACTIVATION, iteration),
            ("write", base + 10 * us, 10, 512 * MIB, MemoryCategory.ACTIVATION, iteration),
            ("read", base + 500_000_000, 10, 512 * MIB, MemoryCategory.ACTIVATION, iteration),
            ("free", base + 600_000_000, 10, 512 * MIB, MemoryCategory.ACTIVATION, iteration),
            ("read", base + 610_000_000, 1, 8 * MIB, MemoryCategory.PARAMETER, iteration),
            ("write", base + 620_000_000, 1, 8 * MIB, MemoryCategory.PARAMETER, iteration),
        ]
        marks.append((base, base + 900_000_000))
    return build_trace(events, iteration_marks=marks, end_ns=4_000_000_000)


def test_swap_advisor_style_selects_largest_blocks():
    trace = make_training_like_trace()
    result = swap_advisor_style_policy(trace, top_k=1)
    assert result.selected_block_ids == [10]
    assert result.swapped_bytes == 512 * MIB
    assert result.savings_bytes > 0
    assert result.summary()["name"] == "swap_advisor_style"


def test_swap_advisor_style_charges_overhead_when_interval_too_short():
    trace = make_training_like_trace()
    generous = swap_advisor_style_policy(trace, top_k=1)
    # The 512 MiB activation is idle ~0.5 s, which hides its ~0.16 s round trip.
    assert generous.overhead_ns == pytest.approx(0.0)


def test_zero_offload_style_offloads_optimizer_state_and_gradients():
    trace = make_training_like_trace()
    result = zero_offload_style_policy(trace)
    assert result.swapped_bytes == 16 * MIB
    assert result.overhead_ns > 0
    assert result.savings_fraction < 0.1      # tiny compared to activations


def test_policies_handle_traces_without_candidates(simple_trace):
    result = swap_advisor_style_policy(simple_trace)
    assert result.swapped_bytes == 0
    assert result.savings_bytes == 0
    zero = zero_offload_style_policy(simple_trace)
    assert zero.swapped_bytes == 0


def test_recompute_plan_discards_activation_bytes():
    trace = make_training_like_trace()
    plan = estimate_recompute_plan(trace, keep_every=2)
    assert plan.activation_bytes_total > 0
    assert 0 <= plan.activation_bytes_discarded <= plan.activation_bytes_total
    assert plan.estimated_peak_bytes_after <= plan.peak_bytes_before
    assert plan.recompute_time_overhead_ns >= 0
    assert plan.summary()["keep_every"] == 2
    with pytest.raises(ValueError):
        estimate_recompute_plan(trace, keep_every=0)


def test_recompute_keep_every_one_discards_nothing():
    trace = make_training_like_trace()
    plan = estimate_recompute_plan(trace, keep_every=1)
    assert plan.activation_bytes_discarded == 0
    assert plan.recompute_time_overhead_ns == 0


# -- recorded producer compute times (the recompute cost model) ------------------------


def test_per_block_compute_times_recovers_producer_spans():
    """A block's producer closes with its first post-malloc write; the span
    back to the previous event in the global stream is the compute time."""
    from repro.baselines.recompute import per_block_compute_times

    trace = build_trace([
        ("malloc", 0, 1, 100),
        ("malloc", 5, 2, 100),
        ("write", 20, 2, 100),     # producer of block 2: 20 - 5 = 15
        ("read", 30, 1, 100),      # block 1's first touch is a read: omitted
        ("malloc", 40, 3, 100),
        ("write", 70, 3, 100),     # producer of block 3: 70 - 40 = 30
        ("free", 90, 2, 100),
        ("free", 95, 3, 100),
        ("free", 100, 1, 100),
    ])
    assert per_block_compute_times(trace) == {2: 15, 3: 30}


def test_per_block_compute_times_ignores_later_writes():
    """Only the *first* write after a malloc is the producer; in-place
    updates later in the lifetime must not overwrite the learned time."""
    from repro.baselines.recompute import per_block_compute_times

    trace = build_trace([
        ("malloc", 0, 1, 100),
        ("write", 10, 1, 100),     # producer: 10
        ("write", 500, 1, 100),    # in-place update: ignored
        ("free", 600, 1, 100),
    ])
    assert per_block_compute_times(trace) == {1: 10}


def test_recompute_overhead_sums_recorded_times_of_discarded_blocks():
    """The estimator charges exactly the recorded producer times of what it
    discards — not a fraction-of-iteration guess."""
    from repro.baselines.recompute import per_block_compute_times

    us = 1_000
    spans = [10 * us, 20 * us, 30 * us, 40 * us]
    events = []
    marks = []
    for iteration in range(2):
        base = (iteration + 1) * 1_000_000_000
        clock = base
        for index, span in enumerate(spans):
            block_id = 10 + index
            events.append(("malloc", clock, block_id, 64 * MIB,
                           MemoryCategory.ACTIVATION, iteration))
            events.append(("write", clock + span, block_id, 64 * MIB,
                           MemoryCategory.ACTIVATION, iteration))
            clock += span + 100 * us
        for index in range(len(spans)):
            events.append(("free", clock + index, 10 + index, 64 * MIB,
                           MemoryCategory.ACTIVATION, iteration))
        marks.append((base, base + 900_000_000))
    trace = build_trace(events, iteration_marks=marks, end_ns=3_000_000_000)

    computed = per_block_compute_times(trace)
    assert computed == {10 + i: span for i, span in enumerate(spans)}

    plan = estimate_recompute_plan(trace, keep_every=2)
    # The expectation, the way the estimator defines it: the recorded
    # producer times of the discarded (odd-indexed by malloc order) steady
    # lifetimes, normalized by the steady iteration count.
    steady = sorted(
        (lt for lt in trace.lifetimes if lt.iteration >= 1),
        key=lambda item: item.malloc_ns)
    expected = sum(computed[lt.block_id]
                   for index, lt in enumerate(steady) if index % 2 != 0)
    expected //= len({lt.iteration for lt in steady})
    assert plan.recompute_time_overhead_ns == expected
    assert plan.recompute_time_overhead_ns > 0


def test_recompute_overhead_falls_back_without_write_timing():
    """A trace with no usable kernel timing keeps the legacy first-order
    fraction-of-iteration model."""
    events = []
    marks = []
    for iteration in range(3):
        base = (iteration + 1) * 1_000_000_000
        events.append(("malloc", base, 10, 64 * MIB,
                       MemoryCategory.ACTIVATION, iteration))
        events.append(("read", base + 500_000_000, 10, 64 * MIB,
                       MemoryCategory.ACTIVATION, iteration))
        events.append(("free", base + 600_000_000, 10, 64 * MIB,
                       MemoryCategory.ACTIVATION, iteration))
        marks.append((base, base + 900_000_000))
    trace = build_trace(events, iteration_marks=marks, end_ns=4_000_000_000)
    plan = estimate_recompute_plan(trace, keep_every=2,
                                   forward_fraction_of_iteration=0.33)
    expected = int(900_000_000 * 0.33 * (1.0 - 1.0 / 2))
    assert plan.recompute_time_overhead_ns == expected


def test_recompute_overhead_uses_recorded_times_on_training_trace():
    """The shared synthetic training trace carries write timing, so the
    estimator must charge the activation's recorded 10 µs producer — not
    the ~150 ms fraction-of-iteration guess the old model produced."""
    trace = make_training_like_trace()
    plan = estimate_recompute_plan(trace, keep_every=2)
    # one discarded steady activation lifetime, 10 µs producer span,
    # normalized over the two steady iterations
    assert plan.recompute_time_overhead_ns == 10_000 // 2
    assert plan.recompute_time_overhead_ns < 1_000_000   # not the legacy model


def test_pruning_barely_reduces_training_footprint():
    trace = make_training_like_trace()
    estimate = estimate_pruning(trace, sparsity=0.9)
    assert estimate.parameter_reduction_fraction == pytest.approx(0.9)
    # The paper's argument: pruning 90% of weights saves only a few percent of
    # the training footprint because intermediates dominate.
    assert estimate.total_reduction_fraction < 0.1
    with pytest.raises(ValueError):
        estimate_pruning(trace, sparsity=1.5)


def test_quantization_estimate():
    trace = make_training_like_trace()
    estimate = estimate_quantization(trace, bits=8)
    assert estimate.parameter_bytes_after == estimate.parameter_bytes_before // 4
    assert estimate.total_reduction_fraction < 0.1
    assert "8-bit" in estimate.technique
    with pytest.raises(ValueError):
        estimate_quantization(trace, bits=0)


# -- the policy registry --------------------------------------------------------------


def test_policy_registry_names_and_lookup():
    from repro.baselines import available_policies, get_policy

    names = available_policies()
    assert names[0] == "none"
    assert {"planner", "swap_advisor", "zero_offload", "recompute", "pruning",
            "quantization"} <= set(names)
    for name in names:
        assert get_policy(name).name == name
    with pytest.raises(ValueError, match="unknown swap policy"):
        get_policy("teleport")


def test_none_policy_evaluates_to_none():
    from repro.baselines import get_policy

    assert get_policy("none").evaluate(make_training_like_trace()) is None


def test_every_policy_summary_is_normalized():
    from repro.baselines import available_policies, get_policy

    trace = make_training_like_trace()
    for name in available_policies():
        summary = get_policy(name).evaluate(trace)
        if name == "none":
            continue
        assert summary["policy"] == name
        assert summary["savings_bytes"] >= 0
        assert 0.0 <= summary["savings_fraction"] <= 1.0
        assert summary["overhead_ns"] >= 0.0


def test_policy_summaries_match_underlying_estimators():
    from repro.baselines import get_policy

    trace = make_training_like_trace()
    advisor = get_policy("swap_advisor").evaluate(trace)
    direct = swap_advisor_style_policy(trace)
    assert advisor["savings_bytes"] == direct.savings_bytes

    recompute = get_policy("recompute").evaluate(trace)
    plan = estimate_recompute_plan(trace, keep_every=2)
    assert recompute["savings_bytes"] == plan.savings_bytes

    pruning = get_policy("pruning").evaluate(trace)
    estimate = estimate_pruning(trace, sparsity=0.9)
    assert pruning["savings_bytes"] == (estimate.peak_bytes_before
                                        - estimate.estimated_peak_bytes_after)
