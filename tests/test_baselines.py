"""Tests for the swapping/recompute/compression baseline policies."""

import pytest

from repro.baselines import (
    estimate_pruning,
    estimate_quantization,
    estimate_recompute_plan,
    swap_advisor_style_policy,
    zero_offload_style_policy,
)
from repro.core.events import MemoryCategory
from repro.units import MIB, s_to_ns

from tests.helpers import build_trace


def make_training_like_trace():
    """Parameters + optimizer state + a large activation per iteration."""
    us = 1_000
    events = [
        ("malloc", 0, 1, 8 * MIB, MemoryCategory.PARAMETER, -1),
        ("malloc", 1 * us, 2, 8 * MIB, MemoryCategory.OPTIMIZER_STATE, -1),
        ("malloc", 2 * us, 3, 8 * MIB, MemoryCategory.PARAMETER_GRADIENT, -1),
    ]
    marks = []
    for iteration in range(3):
        base = (iteration + 1) * 1_000_000_000
        events += [
            ("malloc", base, 10, 512 * MIB, MemoryCategory.ACTIVATION, iteration),
            ("write", base + 10 * us, 10, 512 * MIB, MemoryCategory.ACTIVATION, iteration),
            ("read", base + 500_000_000, 10, 512 * MIB, MemoryCategory.ACTIVATION, iteration),
            ("free", base + 600_000_000, 10, 512 * MIB, MemoryCategory.ACTIVATION, iteration),
            ("read", base + 610_000_000, 1, 8 * MIB, MemoryCategory.PARAMETER, iteration),
            ("write", base + 620_000_000, 1, 8 * MIB, MemoryCategory.PARAMETER, iteration),
        ]
        marks.append((base, base + 900_000_000))
    return build_trace(events, iteration_marks=marks, end_ns=4_000_000_000)


def test_swap_advisor_style_selects_largest_blocks():
    trace = make_training_like_trace()
    result = swap_advisor_style_policy(trace, top_k=1)
    assert result.selected_block_ids == [10]
    assert result.swapped_bytes == 512 * MIB
    assert result.savings_bytes > 0
    assert result.summary()["name"] == "swap_advisor_style"


def test_swap_advisor_style_charges_overhead_when_interval_too_short():
    trace = make_training_like_trace()
    generous = swap_advisor_style_policy(trace, top_k=1)
    # The 512 MiB activation is idle ~0.5 s, which hides its ~0.16 s round trip.
    assert generous.overhead_ns == pytest.approx(0.0)


def test_zero_offload_style_offloads_optimizer_state_and_gradients():
    trace = make_training_like_trace()
    result = zero_offload_style_policy(trace)
    assert result.swapped_bytes == 16 * MIB
    assert result.overhead_ns > 0
    assert result.savings_fraction < 0.1      # tiny compared to activations


def test_policies_handle_traces_without_candidates(simple_trace):
    result = swap_advisor_style_policy(simple_trace)
    assert result.swapped_bytes == 0
    assert result.savings_bytes == 0
    zero = zero_offload_style_policy(simple_trace)
    assert zero.swapped_bytes == 0


def test_recompute_plan_discards_activation_bytes():
    trace = make_training_like_trace()
    plan = estimate_recompute_plan(trace, keep_every=2)
    assert plan.activation_bytes_total > 0
    assert 0 <= plan.activation_bytes_discarded <= plan.activation_bytes_total
    assert plan.estimated_peak_bytes_after <= plan.peak_bytes_before
    assert plan.recompute_time_overhead_ns >= 0
    assert plan.summary()["keep_every"] == 2
    with pytest.raises(ValueError):
        estimate_recompute_plan(trace, keep_every=0)


def test_recompute_keep_every_one_discards_nothing():
    trace = make_training_like_trace()
    plan = estimate_recompute_plan(trace, keep_every=1)
    assert plan.activation_bytes_discarded == 0
    assert plan.recompute_time_overhead_ns == 0


def test_pruning_barely_reduces_training_footprint():
    trace = make_training_like_trace()
    estimate = estimate_pruning(trace, sparsity=0.9)
    assert estimate.parameter_reduction_fraction == pytest.approx(0.9)
    # The paper's argument: pruning 90% of weights saves only a few percent of
    # the training footprint because intermediates dominate.
    assert estimate.total_reduction_fraction < 0.1
    with pytest.raises(ValueError):
        estimate_pruning(trace, sparsity=1.5)


def test_quantization_estimate():
    trace = make_training_like_trace()
    estimate = estimate_quantization(trace, bits=8)
    assert estimate.parameter_bytes_after == estimate.parameter_bytes_before // 4
    assert estimate.total_reduction_fraction < 0.1
    assert "8-bit" in estimate.technique
    with pytest.raises(ValueError):
        estimate_quantization(trace, bits=0)


# -- the policy registry --------------------------------------------------------------


def test_policy_registry_names_and_lookup():
    from repro.baselines import available_policies, get_policy

    names = available_policies()
    assert names[0] == "none"
    assert {"planner", "swap_advisor", "zero_offload", "recompute", "pruning",
            "quantization"} <= set(names)
    for name in names:
        assert get_policy(name).name == name
    with pytest.raises(ValueError, match="unknown swap policy"):
        get_policy("teleport")


def test_none_policy_evaluates_to_none():
    from repro.baselines import get_policy

    assert get_policy("none").evaluate(make_training_like_trace()) is None


def test_every_policy_summary_is_normalized():
    from repro.baselines import available_policies, get_policy

    trace = make_training_like_trace()
    for name in available_policies():
        summary = get_policy(name).evaluate(trace)
        if name == "none":
            continue
        assert summary["policy"] == name
        assert summary["savings_bytes"] >= 0
        assert 0.0 <= summary["savings_fraction"] <= 1.0
        assert summary["overhead_ns"] >= 0.0


def test_policy_summaries_match_underlying_estimators():
    from repro.baselines import get_policy

    trace = make_training_like_trace()
    advisor = get_policy("swap_advisor").evaluate(trace)
    direct = swap_advisor_style_policy(trace)
    assert advisor["savings_bytes"] == direct.savings_bytes

    recompute = get_policy("recompute").evaluate(trace)
    plan = estimate_recompute_plan(trace, keep_every=2)
    assert recompute["savings_bytes"] == plan.savings_bytes

    pruning = get_policy("pruning").evaluate(trace)
    estimate = estimate_pruning(trace, sparsity=0.9)
    assert pruning["savings_bytes"] == (estimate.peak_bytes_before
                                        - estimate.estimated_peak_bytes_after)
