"""Mixed-precision realism: fp32 master weights and optimizer state under fp16.

Half-precision training must not let *everything* follow the training dtype:
parameters, gradients and activations are stored in float16, but the
optimizer follows the AMP recipe — float32 master weights plus float32 state
buffers, both living in the ``optimizer_state`` category.
"""

import numpy as np
import pytest

from repro.core.events import MemoryCategory
from repro.device import Device, small_test_device
from repro.nn import SGD, Adam, Linear
from repro.tensor.dtype import float16, float32
from repro.train.session import TrainingRunConfig, run_training_session


@pytest.fixture
def half_device():
    """A tiny eager device whose default training dtype is float16."""
    return Device(small_test_device(), execution_mode="eager", default_dtype="float16")


def _step_once(optimizer, layer):
    layer.weight.ensure_grad().set_data(np.ones(layer.weight.numel))
    layer.bias.ensure_grad().set_data(np.ones(layer.bias.numel))
    optimizer.step()


def test_fp16_sgd_keeps_fp32_momentum_and_master_weights(half_device, rng):
    layer = Linear(half_device, 4, 3, rng=rng)
    assert layer.weight.data.dtype is float16
    optimizer = SGD(layer.parameters(), lr=0.1, momentum=0.9)
    _step_once(optimizer, layer)

    for buffer in optimizer._momentum_buffers.values():
        assert buffer.dtype is float32
        assert buffer.category is MemoryCategory.OPTIMIZER_STATE
    masters = optimizer._master_weights
    assert set(masters) == {0, 1}
    for index, parameter in enumerate(optimizer.parameters):
        master = masters[index]
        assert master.dtype is float32
        assert master.category is MemoryCategory.OPTIMIZER_STATE
        assert master.shape == parameter.shape
        # Master bytes are double the half-precision parameter bytes.
        assert master.nbytes == 2 * parameter.nbytes
    # state_bytes = fp32 momentum + fp32 masters (4 bytes/element each).
    elements = sum(parameter.numel for parameter in optimizer.parameters)
    assert optimizer.state_bytes() == 2 * 4 * elements
    assert optimizer.master_weight_bytes() == 4 * elements


def test_fp16_adam_moments_are_fp32(half_device, rng):
    layer = Linear(half_device, 4, 3, rng=rng)
    optimizer = Adam(layer.parameters(), lr=1e-3)
    _step_once(optimizer, layer)
    for store in (optimizer._exp_avg, optimizer._exp_avg_sq):
        for buffer in store.values():
            assert buffer.dtype is float32
    elements = sum(parameter.numel for parameter in optimizer.parameters)
    # Two fp32 moments + one fp32 master copy per element.
    assert optimizer.state_bytes() == 3 * 4 * elements


def test_fp32_training_allocates_no_master_weights(test_device, rng):
    layer = Linear(test_device, 4, 3, rng=rng)
    optimizer = SGD(layer.parameters(), lr=0.1, momentum=0.9)
    _step_once(optimizer, layer)
    assert optimizer._master_weights == {}
    assert optimizer.master_weight_bytes() == 0
    for buffer in optimizer._momentum_buffers.values():
        assert buffer.dtype is float32  # parameters already fp32


def test_fp16_master_update_flows_through_the_master_copy(half_device, rng):
    """The update must be applied in fp32 and downcast into the fp16 weights."""
    layer = Linear(half_device, 2, 2, rng=rng)
    optimizer = SGD(layer.parameters(), lr=0.5)
    before = layer.weight.values().astype(np.float32).copy()
    layer.weight.ensure_grad().set_data(np.ones(layer.weight.numel))
    layer.bias.ensure_grad().set_data(np.zeros(layer.bias.numel))
    optimizer.step()
    master = optimizer._master_weights[0]
    np.testing.assert_allclose(master.numpy().reshape(-1),
                               before.reshape(-1) - 0.5, rtol=1e-3)
    # The fp16 copy tracks the downcast master.
    np.testing.assert_allclose(
        layer.weight.values().astype(np.float32).reshape(-1),
        master.numpy().reshape(-1), rtol=1e-3)


def test_fp16_session_breakdown_carries_fp32_optimizer_state():
    """End-to-end: the fp16 run's optimizer-state bytes match fp32 state."""
    def run(dtype):
        config = TrainingRunConfig(
            model="mlp", model_kwargs={"hidden_dim": 32}, batch_size=16,
            iterations=2, dtype=dtype, execution_mode="virtual")
        return run_training_session(config)

    half, full = run("float16"), run("float32")
    assert half.parameter_bytes * 2 == full.parameter_bytes

    def state_bytes(session):
        return sum(l.size for l in session.trace.lifetimes
                   if l.category is MemoryCategory.OPTIMIZER_STATE)

    # fp16 state = fp32 momentum (same as fp32 run) + fp32 master copies.
    assert state_bytes(half) > state_bytes(full)
