"""Tests for dtypes and device storage."""

import numpy as np
import pytest

from repro.core.events import MemoryCategory
from repro.device import CountingListener
from repro.errors import DTypeError, MaterializationError, TensorError
from repro.tensor.dtype import all_dtypes, float32, from_numpy_dtype, get_dtype, int64
from repro.tensor.storage import DeviceStorage


# -- dtypes ---------------------------------------------------------------------------


def test_get_dtype_by_name():
    assert get_dtype("float32") is float32
    assert get_dtype("int64") is int64
    with pytest.raises(DTypeError):
        get_dtype("complex128")


def test_from_numpy_dtype_round_trip():
    for dtype in all_dtypes():
        assert from_numpy_dtype(dtype.numpy_dtype) is dtype
    with pytest.raises(DTypeError):
        from_numpy_dtype(np.dtype(np.complex64))


def test_dtype_itemsizes():
    assert float32.itemsize == 4
    assert int64.itemsize == 8
    assert get_dtype("float16").itemsize == 2
    assert repr(float32) == "repro.float32"


# -- storage --------------------------------------------------------------------------


def test_storage_allocates_device_block(test_device):
    storage = DeviceStorage(test_device, numel=100, dtype=float32,
                            category=MemoryCategory.ACTIVATION, tag="act")
    assert storage.nbytes == 400
    assert storage.block is not None
    assert test_device.allocated_bytes >= 400


def test_storage_eager_buffer_and_set(test_device):
    storage = DeviceStorage(test_device, numel=4, dtype=float32)
    assert storage.is_materialized
    storage.set_buffer(np.array([1.0, 2.0, 3.0, 4.0]))
    np.testing.assert_allclose(storage.buffer(), [1, 2, 3, 4])
    with pytest.raises(TensorError):
        storage.set_buffer(np.zeros(5))


def test_storage_virtual_has_no_buffer(virtual_device):
    storage = DeviceStorage(virtual_device, numel=10)
    assert not storage.is_materialized
    with pytest.raises(MaterializationError):
        storage.buffer()
    # Setting values on a virtual storage is silently dropped.
    storage.set_buffer(np.zeros(10))


def test_storage_refcounting_frees_at_zero(test_device):
    storage = DeviceStorage(test_device, numel=10)
    storage.retain()
    storage.release()
    assert not storage.is_freed
    storage.release()
    assert storage.is_freed
    # Releasing an already-freed storage is a no-op.
    storage.release()


def test_storage_free_is_idempotent(test_device):
    storage = DeviceStorage(test_device, numel=10)
    storage.free()
    storage.free()
    assert storage.is_freed
    with pytest.raises(TensorError):
        storage.record_read("op")


def test_storage_access_records_events(test_device):
    listener = CountingListener()
    test_device.add_listener(listener)
    storage = DeviceStorage(test_device, numel=10, tag="x")
    storage.record_write("producer")
    storage.record_read("consumer")
    storage.record_read("consumer", nbytes=4)
    assert listener.writes == 1
    assert listener.reads == 2


def test_storage_rejects_negative_numel(test_device):
    with pytest.raises(TensorError):
        DeviceStorage(test_device, numel=-1)


def test_zero_element_storage_still_occupies_a_block(test_device):
    storage = DeviceStorage(test_device, numel=0)
    assert storage.block is not None
