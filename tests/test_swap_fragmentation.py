"""Tests for Eq. 1, the swap planner and the fragmentation analysis."""

import pytest

from repro.core.ati import AccessInterval, compute_access_intervals
from repro.core.events import MemoryCategory, MemoryEventKind
from repro.core.fragmentation import (
    analyze_fragmentation,
    fragmentation_timeline,
    internal_fragmentation_bytes,
    snapshot_external_fragmentation,
)
from repro.core.swap import (
    BandwidthConfig,
    SwapPlanner,
    is_swappable,
    max_swap_bytes,
    swap_round_trip_ns,
)
from repro.units import GB, KB, MIB, s_to_ns, us_to_ns

from tests.helpers import build_trace


def make_interval(block_id, size, interval_ns):
    return AccessInterval(block_id=block_id, size=size, category=MemoryCategory.ACTIVATION,
                          tag=f"b{block_id}", interval_ns=interval_ns, start_event_id=0,
                          end_event_id=1, start_kind=MemoryEventKind.WRITE,
                          end_kind=MemoryEventKind.READ, iteration=0)


# -- Equation 1 -------------------------------------------------------------------------------


def test_equation_one_reproduces_paper_numbers():
    bandwidths = BandwidthConfig.from_paper()
    at_25us = max_swap_bytes(us_to_ns(25), bandwidths)
    assert at_25us / KB == pytest.approx(79.37, abs=0.01)
    at_800ms = max_swap_bytes(s_to_ns(0.8), bandwidths)
    assert at_800ms / GB == pytest.approx(2.54, abs=0.01)


def test_equation_one_is_linear_in_ati():
    bandwidths = BandwidthConfig.from_paper()
    assert max_swap_bytes(2_000, bandwidths) == pytest.approx(
        2 * max_swap_bytes(1_000, bandwidths))
    assert max_swap_bytes(0, bandwidths) == 0.0
    assert max_swap_bytes(-5, bandwidths) == 0.0


def test_round_trip_and_feasibility():
    bandwidths = BandwidthConfig.from_paper()
    limit = max_swap_bytes(us_to_ns(100), bandwidths)
    assert swap_round_trip_ns(limit, bandwidths) == pytest.approx(us_to_ns(100), rel=1e-6)
    assert is_swappable(make_interval(1, int(limit) - 1, us_to_ns(100)), bandwidths)
    assert not is_swappable(make_interval(1, int(limit * 2), us_to_ns(100)), bandwidths)


def test_bandwidth_config_from_device_spec():
    from repro.device.spec import titan_x_pascal
    config = BandwidthConfig.from_device_spec(titan_x_pascal())
    assert config.h2d_bytes_per_s == pytest.approx(6.3e9)
    assert config.d2h_bytes_per_s == pytest.approx(6.4e9)


# -- planner ------------------------------------------------------------------------------------


def make_swap_trace():
    """One huge long-idle block, one huge busy block, one small block."""
    return build_trace([
        ("malloc", 0, 1, 800 * MIB, MemoryCategory.ACTIVATION, 0),
        ("malloc", 1, 2, 700 * MIB, MemoryCategory.ACTIVATION, 0),
        ("malloc", 2, 3, 64 * 1024, MemoryCategory.PARAMETER, 0),
    ], end_ns=s_to_ns(2.0))


def test_swap_planner_selects_only_feasible_candidates():
    trace = make_swap_trace()
    intervals = [
        make_interval(1, 800 * MIB, s_to_ns(1.0)),    # hides a 3.17 GB round trip: feasible
        make_interval(2, 700 * MIB, us_to_ns(50)),    # infeasible
        make_interval(3, 64 * 1024, s_to_ns(1.0)),    # too small to bother
    ]
    planner = SwapPlanner()
    plan = planner.plan(trace, intervals)
    selected_ids = [candidate.interval.block_id for candidate in plan.selected]
    assert selected_ids == [1]
    assert plan.total_overhead_ns == 0.0
    assert plan.savings_bytes == 800 * MIB
    assert 0 < plan.savings_fraction < 1
    assert "peak before" in plan.describe()


def test_swap_planner_with_overhead_budget_takes_infeasible_blocks():
    trace = make_swap_trace()
    intervals = [make_interval(2, 700 * MIB, us_to_ns(50))]
    eager_planner = SwapPlanner(allow_overhead_ns=10 * s_to_ns(1.0))
    plan = eager_planner.plan(trace, intervals)
    assert len(plan.selected) == 1
    assert plan.total_overhead_ns > 0


def test_swap_planner_target_bytes_stops_early():
    trace = make_swap_trace()
    intervals = [
        make_interval(1, 800 * MIB, s_to_ns(1.5)),
        make_interval(2, 700 * MIB, s_to_ns(1.5)),
    ]
    plan = SwapPlanner().plan(trace, intervals, target_bytes=700 * MIB)
    assert len(plan.selected) == 1


def test_swap_planner_one_swap_per_block():
    trace = make_swap_trace()
    intervals = [
        make_interval(1, 800 * MIB, s_to_ns(1.0)),
        make_interval(1, 800 * MIB, s_to_ns(1.2)),
    ]
    plan = SwapPlanner().plan(trace, intervals)
    assert len(plan.selected) == 1
    assert plan.summary()["num_candidates"] == 2


def test_swap_planner_on_real_trace(paper_mlp_session):
    intervals = compute_access_intervals(paper_mlp_session.trace)
    plan = SwapPlanner().plan(paper_mlp_session.trace, intervals)
    assert plan.peak_bytes_before > 0
    assert plan.savings_bytes >= 0
    assert plan.estimated_peak_bytes_after <= plan.peak_bytes_before


# -- fragmentation ---------------------------------------------------------------------------------


def make_fragmentation_trace():
    return build_trace([
        ("segment_alloc", 0, -1, 4 * MIB, MemoryCategory.UNKNOWN, 0),
        ("malloc", 1, 1, 1 * MIB, MemoryCategory.ACTIVATION, 0),
        ("malloc", 2, 2, 1 * MIB, MemoryCategory.ACTIVATION, 0),
        ("free", 3, 1, 1 * MIB, MemoryCategory.ACTIVATION, 0),
        ("free", 4, 2, 1 * MIB, MemoryCategory.ACTIVATION, 0),
        ("segment_free", 5, -1, 4 * MIB, MemoryCategory.UNKNOWN, 0),
    ])


def test_fragmentation_timeline_tracks_reserved_and_allocated():
    timeline = fragmentation_timeline(make_fragmentation_trace())
    assert timeline[0].reserved_bytes == 4 * MIB
    assert timeline[0].allocated_bytes == 0
    assert timeline[2].allocated_bytes == 2 * MIB
    assert timeline[2].utilization == pytest.approx(0.5)
    assert timeline[-1].reserved_bytes == 0


def test_fragmentation_report_summary():
    report = analyze_fragmentation(make_fragmentation_trace())
    assert report.peak_allocated_bytes == 2 * MIB
    assert report.peak_reserved_bytes == 4 * MIB
    assert report.peak_cached_bytes == 4 * MIB
    assert 0 < report.mean_utilization <= 1.0
    assert set(report.summary()) == {"peak_allocated_bytes", "peak_reserved_bytes",
                                     "peak_cached_bytes", "mean_utilization",
                                     "min_utilization"}


def test_fragmentation_of_empty_trace():
    from repro.core.trace import MemoryTrace
    report = analyze_fragmentation(MemoryTrace())
    assert report.peak_allocated_bytes == 0
    assert report.mean_utilization == 1.0


def test_internal_fragmentation_bound(simple_trace):
    assert internal_fragmentation_bytes(simple_trace) == 2 * 511


def test_snapshot_external_fragmentation(test_device):
    block = test_device.allocate(512 * 1024)
    test_device.allocate(512 * 1024)
    test_device.free(block)
    snapshot = test_device.memory_snapshot()
    value = snapshot_external_fragmentation(snapshot)
    assert 0.0 <= value < 1.0
    # With exactly one free block the ratio is zero by definition.
    assert snapshot_external_fragmentation([{"blocks": [
        {"allocated": False, "size": 100}]}]) == 0.0
    assert snapshot_external_fragmentation([{"blocks": [
        {"allocated": True, "size": 100}]}]) == 0.0
