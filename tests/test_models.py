"""Tests for the model zoo."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import (
    MLP,
    AlexNet,
    LeNet5,
    ResNet,
    SimpleInception,
    available_models,
    build_model,
    paper_mlp,
    register_model,
    vgg11,
)
from repro.tensor import from_numpy


def forward_backward(device, model, batch, in_shape, num_classes, rng):
    """Run one forward and backward pass and return the logits shape."""
    x = from_numpy(device, rng.standard_normal((batch,) + in_shape).astype(np.float32))
    logits = model(x)
    grad = from_numpy(device, rng.standard_normal(logits.shape).astype(np.float32))
    grad_x = model.backward(grad)
    assert grad_x.shape == x.shape
    return logits.shape


def test_paper_mlp_matches_figure_one_shapes(virtual_device):
    model = paper_mlp(virtual_device)
    shapes = {name: param.shape for name, param in model.named_parameters()}
    assert shapes["layer0.weight"] == (2, 12288)
    assert shapes["layer0.bias"] == (12288,)
    assert shapes["layer2.weight"] == (12288, 2)
    assert shapes["layer2.bias"] == (2,)
    assert model.parameter_count() == 2 * 12288 + 12288 + 12288 * 2 + 2


def test_small_mlp_forward_backward(test_device, rng):
    model = MLP(test_device, hidden_dim=32, rng=rng)
    assert forward_backward(test_device, model, 8, (2,), 2, rng) == (8, 2)


def test_lenet5_forward_backward(test_device, rng):
    model = LeNet5(test_device, rng=rng)
    assert forward_backward(test_device, model, 4, (1, 28, 28), 10, rng) == (4, 10)


def test_lenet5_rejects_tiny_inputs(test_device):
    with pytest.raises(ValueError):
        LeNet5(test_device, input_size=8)


def test_alexnet_cifar_forward_backward(test_device, rng):
    model = AlexNet(test_device, num_classes=10, input_size=32, rng=rng)
    assert forward_backward(test_device, model, 2, (3, 32, 32), 10, rng) == (2, 10)


def test_alexnet_imagenet_parameter_count(virtual_device, rng):
    model = AlexNet(virtual_device, num_classes=1000, input_size=224, rng=rng)
    # Torchvision AlexNet has ~61.1M parameters.
    assert model.parameter_count() == pytest.approx(61_100_840, rel=0.01)


def test_vgg11_builds_with_cifar_inputs(virtual_device, rng):
    model = vgg11(virtual_device, num_classes=100, input_size=32, rng=rng)
    assert model.parameter_count() > 9_000_000


def test_inception_forward_backward(test_device, rng):
    model = SimpleInception(test_device, num_classes=10, input_size=32, rng=rng)
    assert forward_backward(test_device, model, 2, (3, 32, 32), 10, rng) == (2, 10)


@pytest.mark.parametrize("depth,expected_millions", [
    ("resnet18", 11.7), ("resnet34", 21.8), ("resnet50", 25.6),
    ("resnet101", 44.5), ("resnet152", 60.2),
])
def test_resnet_parameter_counts_match_reference(virtual_device, rng, depth, expected_millions):
    model = ResNet(virtual_device, depth, num_classes=1000, input_size=224, rng=rng)
    assert model.parameter_count() / 1e6 == pytest.approx(expected_millions, rel=0.02)


def test_resnet18_cifar_forward_backward(test_device, rng):
    model = ResNet(test_device, "resnet18", num_classes=10, input_size=32, rng=rng)
    assert forward_backward(test_device, model, 2, (3, 32, 32), 10, rng) == (2, 10)


def test_resnet_unknown_depth_raises(test_device):
    with pytest.raises(ValueError, match="unknown ResNet depth"):
        ResNet(test_device, "resnet7")


def test_registry_lists_and_builds_models(virtual_device):
    names = available_models()
    assert "paper_mlp" in names
    assert "resnet152" in names
    model = build_model("lenet5", virtual_device)
    assert model.parameter_count() > 0


def test_registry_unknown_model_raises(virtual_device):
    with pytest.raises(ConfigurationError, match="unknown model"):
        build_model("transformer-9000", virtual_device)


def test_registry_register_custom_model(virtual_device):
    register_model("tiny_mlp_for_test", lambda device, **kw: MLP(device, hidden_dim=4, **kw),
                   overwrite=True)
    model = build_model("tiny_mlp_for_test", virtual_device)
    assert model.parameter_count() > 0
    with pytest.raises(ConfigurationError):
        register_model("tiny_mlp_for_test", lambda device, **kw: None)


def test_virtual_model_training_step_has_no_values(virtual_device, rng):
    """Virtual execution builds and traverses models without materializing data."""
    model = MLP(virtual_device, hidden_dim=128, rng=rng)
    x = from_numpy(virtual_device, rng.standard_normal((16, 2)).astype(np.float32))
    logits = model(x)
    grad = from_numpy(virtual_device, np.ones(logits.shape, dtype=np.float32))
    grad_x = model.backward(grad)
    assert grad_x.shape == (16, 2)
    assert not logits.storage.is_materialized
