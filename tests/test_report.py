"""Golden-file tests for the report generator (`repro report`).

The report must be a pure function of the code and the sweep cache: two
generations are byte-identical, `check_report` accepts a freshly written
tree and flags any tampering, and the CLI exit codes mirror that.
"""

import pytest

from repro.cli import main as cli_main
from repro.experiments.sweep import SweepRunner
from repro.report import (
    FIGURE_BUILDERS,
    SMOKE_PROFILE,
    check_report,
    generate_report,
    write_report,
)

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """One sweep cache shared by every test in this module."""
    return tmp_path_factory.mktemp("report-cache")


@pytest.fixture(scope="module")
def files(cache_dir):
    """The generated smoke-profile report (scenarios run once, then cached)."""
    runner = SweepRunner(cache_dir=cache_dir)
    return generate_report(runner=runner, profile=SMOKE_PROFILE)


def test_report_contains_every_figure_page(files):
    assert "EXPERIMENTS.md" in files
    slugs = {f"docs/figures/{page}" for page in (
        "fig2_gantt.md", "fig3_ati.md", "fig4_outliers.md", "fig5_breakdown.md",
        "fig6_alexnet.md", "fig7_resnet.md", "ablations.md", "scaling.md",
        "swap_execution.md", "feasibility.md")}
    assert slugs <= set(files)
    assert len(FIGURE_BUILDERS) == 10


def test_scaling_page_reports_replica_axis(files):
    scaling = files["docs/figures/scaling.md"]
    assert "--n-devices" in scaling
    assert "n_devices" in scaling
    assert "allreduce_ms" in scaling
    assert "![scaling peak](svg/scaling_peak.svg)" in scaling
    svg = files["docs/figures/svg/scaling_step.svg"]
    assert svg.startswith("<svg ")


def test_swap_execution_page_reports_predicted_vs_simulated(files):
    page = files["docs/figures/swap_execution.md"]
    assert "--swap" in page
    assert "measured_savings_mib" in page
    assert "predicted_savings_mib" in page
    assert "stall_ms_per_iter" in page
    assert "![swap savings](svg/swap_execution_savings.svg)" in page
    assert files["docs/figures/svg/swap_execution_stalls.svg"].startswith("<svg ")


def test_feasibility_page_reports_the_frontier(files):
    page = files["docs/figures/feasibility.md"]
    assert "--device-memory-gib" in page
    assert "smallest_feasible_capacity_mib" in page
    assert "InfeasibleScenarioError" in page
    assert "pressure" in page or "capacity" in page
    assert "![feasibility stalls](svg/feasibility_stalls.svg)" in page
    assert files["docs/figures/svg/feasibility_stalls.svg"].startswith("<svg ")


def test_report_tables_expose_the_new_sweep_axes(files):
    experiments = files["EXPERIMENTS.md"]
    # The comparison table carries the three axes introduced in this PR.
    assert "| policy | dtype | device |" in experiments
    assert "float16" in experiments
    assert "recompute" in experiments
    # Eq.-1 table pins the paper's operating points.
    assert "79.37" in experiments
    assert "2.54 GB" in experiments


def test_report_pages_embed_charts_and_commands(files):
    fig6 = files["docs/figures/fig6_alexnet.md"]
    assert "**Reproduce:**" in fig6
    assert "![fig6 breakdown](svg/fig6_alexnet.svg)" in fig6
    assert "- [x]" in fig6 or "- [ ]" in fig6
    svg = files["docs/figures/svg/fig6_alexnet.svg"]
    assert svg.startswith("<svg ")
    assert svg.rstrip().endswith("</svg>")


def test_report_is_byte_stable_across_runs(files, cache_dir):
    again = generate_report(runner=SweepRunner(cache_dir=cache_dir),
                            profile=SMOKE_PROFILE)
    assert files == again


def test_check_report_flags_stale_and_missing_files(files, tmp_path):
    root = tmp_path / "repo"
    write_report(files, root=root)
    assert check_report(files, root=root) == []

    stale = root / "EXPERIMENTS.md"
    stale.write_text(stale.read_text(encoding="utf-8") + "drift\n", encoding="utf-8")
    assert check_report(files, root=root) == ["EXPERIMENTS.md"]

    (root / "docs" / "figures" / "fig3_ati.md").unlink()
    assert check_report(files, root=root) == ["EXPERIMENTS.md",
                                              "docs/figures/fig3_ati.md"]


def test_cli_report_write_then_check_then_tamper(tmp_path, cache_dir, capsys):
    out = tmp_path / "repo"
    base = ["report", "--profile", "smoke", "--out", str(out),
            "--cache-dir", str(cache_dir)]
    assert cli_main(base) == 0
    assert (out / "EXPERIMENTS.md").is_file()
    capsys.readouterr()

    assert cli_main(base + ["--check"]) == 0
    assert "in sync" in capsys.readouterr().out

    experiments = out / "EXPERIMENTS.md"
    experiments.write_text("stale", encoding="utf-8")
    assert cli_main(base + ["--check"]) == 1
    err = capsys.readouterr().err
    assert "EXPERIMENTS.md" in err


def test_check_report_flags_orphaned_generated_files(files, tmp_path):
    root = tmp_path / "repo"
    write_report(files, root=root)
    orphan = root / "docs" / "figures" / "fig9_removed.md"
    orphan.write_text("left behind by a renamed builder", encoding="utf-8")
    assert check_report(files, root=root) == [
        "docs/figures/fig9_removed.md (orphaned - no longer generated)"]
