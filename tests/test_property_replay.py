"""Property tests for template replay over randomly sampled scenario grids.

Complementing the exactness suite (which diffs replay against fresh runs on
a fixed matrix), these tests sample random pricing/structure points and
check invariants that must hold for *any* replay: per-rank time must be
monotone along the tape, the footprint peaks must be consistently ordered,
and a result served from the cache must be bitwise identical to the replay
that produced it.
"""

import json
import random

import numpy as np
import pytest

from repro.experiments.replay import ReplayEngine
from repro.experiments.sweep import Scenario, SweepGrid, SweepRunner
from repro.train.session import TrainingRunConfig, build_cluster

MODELS = [("mlp", {"hidden_dim": 32}, "two_cluster", 16),
          ("paper_mlp", {}, "two_cluster", 32),
          ("lenet5", {"num_classes": 10}, "mnist", 4)]
DEVICE_SPECS = ["titan_x_pascal", "v100_sxm2_16gb", "gtx_1080_8gb",
                "ampere_a100_40gb"]
INTERCONNECTS = ["pcie_gen3", "nvlink2", "ethernet_25g"]


def sample_config(rng: random.Random) -> TrainingRunConfig:
    model, model_kwargs, dataset, batch_size = rng.choice(MODELS)
    return TrainingRunConfig(
        model=model, model_kwargs=model_kwargs, dataset=dataset,
        batch_size=batch_size, iterations=rng.choice([1, 2, 3]),
        allocator=rng.choice(["caching", "bump"]),
        device_spec=rng.choice(DEVICE_SPECS),
        dtype=rng.choice(["float32", "float16"]),
        n_devices=rng.choice([1, 2]),
        interconnect=rng.choice(INTERCONNECTS),
        host_dispatch_overhead_ns=rng.choice([None, 2_000, 9_000]),
        execution_mode="symbolic", seed=rng.choice([0, 7]),
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_replayed_timestamps_are_monotone_per_rank(seed):
    """Along every rank's tape, resolved time never goes backwards, and every
    event lands inside the rank's [start, end] window."""
    rng = random.Random(seed)
    engine = ReplayEngine()
    for _ in range(3):
        config = sample_config(rng)
        template = engine.template_for(config)
        assert template is not None, config
        cluster = build_cluster(config)
        times, _ = template._resolve_times(
            cluster.device, template._host_dispatch_ns(config), cluster)
        for rank, absolute in zip(template.ranks, times):
            assert absolute.size == rank.tape_kind.size + 1
            assert np.all(np.diff(absolute) >= 0)
            if rank.event_tape_pos.size:
                stamps = absolute[rank.event_tape_pos]
                assert stamps[0] >= absolute[0]
                assert stamps[-1] <= absolute[-1]


@pytest.mark.parametrize("seed", [10, 11, 12])
def test_replayed_peaks_are_consistently_ordered(seed):
    """live peak <= allocated peak <= reserved peak, for any pricing point."""
    rng = random.Random(seed)
    engine = ReplayEngine()
    for _ in range(3):
        config = sample_config(rng)
        scenario = Scenario(config=config)
        result = engine.price(scenario, scenario.resolve_bandwidths())
        assert result is not None, config
        # The live peak aggregates the merged (cluster-wide) trace while the
        # allocated/reserved peaks are per-replica — same as a fresh run.
        assert (0 < result.peak_live_bytes
                <= config.n_devices * result.peak_allocated_bytes)
        assert result.peak_allocated_bytes <= result.peak_reserved_bytes
        assert 0.0 < result.mean_utilization <= 1.0
        assert 0.0 <= result.swappable_fraction <= 1.0
        assert result.step_time_s_total >= result.step_time_s_mean > 0.0


def test_repricing_responds_to_the_timing_axes():
    """Not just consistent — the replayed clock actually moves with pricing:
    a slower dispatch path can only lengthen the run, a faster interconnect
    can only shorten the collectives."""
    engine = ReplayEngine()

    def total_s(**overrides):
        config = TrainingRunConfig(model="mlp", model_kwargs={"hidden_dim": 32},
                                   batch_size=16, iterations=2, n_devices=2,
                                   execution_mode="symbolic", **overrides)
        scenario = Scenario(config=config)
        return engine.price(scenario, scenario.resolve_bandwidths())

    slow = total_s(host_dispatch_overhead_ns=20_000)
    fast = total_s(host_dispatch_overhead_ns=1_000)
    assert slow.step_time_s_total > fast.step_time_s_total

    pcie = total_s(interconnect="pcie_gen3")
    nvlink = total_s(interconnect="nvlink2")
    assert (pcie.collective["total_time_ns"] > nvlink.collective["total_time_ns"])
    assert engine.templates_compiled == 1  # one structure served all four


def test_cache_hit_rows_are_bitwise_identical(tmp_path):
    """A replayed result read back from the cache is byte-for-byte the row
    that was stored (including wall_time_s, which the cache preserves)."""
    grid = SweepGrid(models=("mlp",), model_kwargs={"hidden_dim": 32},
                     batch_sizes=(16,), iterations=(2,),
                     device_specs=("titan_x_pascal", "v100_sxm2_16gb"),
                     execution_mode="replay")
    first = SweepRunner(cache_dir=tmp_path).run(grid)
    assert first.replayed == len(first.results) == 2
    second = SweepRunner(cache_dir=tmp_path).run(grid)
    assert second.cache_hits == 2 and second.replayed == 0
    for stored, loaded in zip(first.results, second.results):
        assert loaded.from_cache
        assert (json.dumps(stored.to_dict(), sort_keys=True)
                == json.dumps(loaded.to_dict(), sort_keys=True))


@pytest.mark.parametrize("seed", [20, 21, 22, 23])
def test_batched_repricing_matches_scalar_replay(seed):
    """For any randomly drawn scenario grid, ``price_batch`` is
    element-for-element bit-identical to pricing each scenario alone —
    whether a row takes the vectorized broadcast or the per-scenario
    fallback inside :meth:`TraceTemplate.replay_batch`."""
    rng = random.Random(seed)
    scenarios = [Scenario(config=sample_config(rng)) for _ in range(6)]
    bandwidths = [s.resolve_bandwidths() for s in scenarios]
    scalar = [ReplayEngine().price(s, bw)
              for s, bw in zip(scenarios, bandwidths)]
    batched = ReplayEngine().price_batch(scenarios, bandwidths)
    for one, many in zip(scalar, batched):
        assert one is not None and many is not None
        one, many = one.to_dict(), many.to_dict()
        one.pop("wall_time_s"), many.pop("wall_time_s")
        assert one == many


def test_memoized_replays_are_deterministic():
    """Pricing the same scenario twice through one engine gives identical
    rows (wall time aside) — replay holds no mutable state per scenario."""
    engine = ReplayEngine()
    scenario = Scenario(config=TrainingRunConfig(
        model="mlp", model_kwargs={"hidden_dim": 32}, batch_size=16,
        iterations=2, execution_mode="symbolic"))
    bandwidths = scenario.resolve_bandwidths()
    first = engine.price(scenario, bandwidths).to_dict()
    second = engine.price(scenario, bandwidths).to_dict()
    first.pop("wall_time_s"), second.pop("wall_time_s")
    assert first == second
