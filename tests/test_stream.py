"""Tests for the stream model."""

import pytest

from repro.device.clock import DeviceClock
from repro.device.stream import Stream


def test_stream_schedules_back_to_back_operations():
    clock = DeviceClock()
    stream = Stream("compute", clock)
    start1, end1 = stream.schedule(100, name="k1")
    start2, end2 = stream.schedule(50, name="k2")
    assert (start1, end1) == (0, 100)
    assert (start2, end2) == (100, 150)
    assert stream.busy_time_ns() == 150
    assert stream.idle_time_ns() == 0


def test_stream_start_waits_for_device_time():
    clock = DeviceClock()
    stream = Stream("copy", clock)
    stream.schedule(10)
    clock.advance(100)
    start, end = stream.schedule(10)
    assert start == 100
    assert stream.idle_time_ns() == 90


def test_stream_synchronize_advances_clock():
    clock = DeviceClock()
    stream = Stream("compute", clock)
    stream.schedule(500)
    assert clock.now_ns == 0
    stream.synchronize()
    assert clock.now_ns == 500
    # Synchronizing an already-drained stream is a no-op.
    stream.synchronize()
    assert clock.now_ns == 500


def test_stream_rejects_negative_duration():
    stream = Stream("compute", DeviceClock())
    with pytest.raises(ValueError):
        stream.schedule(-1)


def test_stream_ops_get_default_names():
    stream = Stream("s", DeviceClock())
    stream.schedule(1)
    stream.schedule(1, name="named")
    assert stream.ops[0].name == "s-op0"
    assert stream.ops[1].name == "named"
    assert stream.ops[1].duration_ns == 1


# -- schedule_at: the start-before-busy_until edge case ---------------------------------


def test_schedule_at_never_moves_time_backwards():
    """An earliest-start before the stream horizon clamps forward, never back."""
    clock = DeviceClock()
    stream = Stream("copy", clock)
    stream.schedule(100)                       # busy until 100
    start, end = stream.schedule_at(40, 10)    # asks to start in the busy past
    assert (start, end) == (100, 110)
    assert stream.busy_until_ns == 110
    assert stream.idle_time_ns() == 0


def test_schedule_at_honors_future_start():
    clock = DeviceClock()
    stream = Stream("copy", clock)
    start, end = stream.schedule_at(500, 20)
    assert (start, end) == (500, 520)
    # a follow-up plain schedule queues after the future reservation
    start2, _ = stream.schedule(5)
    assert start2 == 520


def test_schedule_at_rejects_negative_duration():
    stream = Stream("copy", DeviceClock())
    with pytest.raises(ValueError):
        stream.schedule_at(0, -1)


def test_schedule_at_keeps_op_order_monotonic():
    """Interleaving past and future earliest-starts keeps starts sorted."""
    stream = Stream("copy", DeviceClock())
    starts = [stream.schedule_at(t, 10)[0] for t in (50, 10, 200, 100)]
    assert starts == sorted(starts)
    assert starts == [50, 60, 200, 210]


# -- reserve / reserve_before: gap-filling copy-engine reservations ---------------------


def test_reserve_backfills_idle_gaps():
    stream = Stream("copy", DeviceClock())
    stream.schedule_at(100, 50)                 # busy [100, 150)
    start, end = stream.reserve(0, 30)          # fits before the reservation
    assert (start, end) == (0, 30)
    start2, end2 = stream.reserve(0, 80)        # does not fit in [30, 100)
    assert (start2, end2) == (150, 230)
    assert stream.busy_until_ns == 230


def test_reserve_before_places_latest_fit_meeting_deadline():
    stream = Stream("copy", DeviceClock())
    first = stream.reserve_before(1000, 100)
    assert first == (900, 1000)
    # same deadline: the second transfer stacks backwards in time
    second = stream.reserve_before(1000, 100)
    assert second == (800, 900)


def test_reserve_before_falls_back_when_deadline_unmeetable():
    stream = Stream("copy", DeviceClock())
    stream.reserve(0, 100)                      # busy [0, 100)
    start, end = stream.reserve_before(50, 80, earliest_start_ns=0)
    assert start >= 100                         # late, via earliest-fit
    assert end - start == 80


def test_reserve_before_respects_earliest_start():
    stream = Stream("copy", DeviceClock())
    start, end = stream.reserve_before(1000, 100, earliest_start_ns=950)
    # the window [950, 1000) cannot hold 100ns; earliest-fit from 950
    assert (start, end) == (950, 1050)


# -- zero-duration operations never move the completion horizon -----------------------


def test_zero_duration_schedule_at_does_not_extend_horizon():
    clock = DeviceClock()
    stream = Stream("copy", clock)
    stream.schedule(100)
    stream.schedule_at(10_000, 0, name="empty")
    assert stream.busy_until_ns == 100
    # A real op issued afterwards is not serialized behind the empty slot.
    start, _ = stream.schedule(50)
    assert start == 100


def test_zero_duration_reserve_does_not_extend_horizon():
    clock = DeviceClock()
    stream = Stream("copy", clock)
    stream.schedule(100)
    start, end = stream.reserve(5_000, 0, name="empty")
    assert (start, end) == (5_000, 5_000)
    assert stream.busy_until_ns == 100


def test_zero_duration_reserve_before_does_not_extend_horizon():
    clock = DeviceClock()
    stream = Stream("copy", clock)
    stream.schedule(100)
    start, end = stream.reserve_before(9_000, 0, name="empty")
    assert start == end == 9_000
    assert stream.busy_until_ns == 100


def test_zero_duration_op_is_still_recorded():
    clock = DeviceClock()
    stream = Stream("copy", clock)
    stream.reserve(500, 0, name="marker")
    assert [op.name for op in stream.ops] == ["marker"]
    assert stream.busy_time_ns() == 0


# -- deadlines that predate the current device time -----------------------------------


def test_reserve_before_deadline_in_the_past_falls_back_to_earliest_fit():
    clock = DeviceClock()
    clock.advance(1_000)
    stream = Stream("copy", clock)
    start, end = stream.reserve_before(500, 100, name="late")
    # The deadline is unmeetable (it predates the clock): earliest fit, late.
    assert (start, end) == (1_000, 1_100)
    assert stream.busy_until_ns == 1_100


def test_reserve_before_deadline_before_clock_start_with_existing_ops():
    clock = DeviceClock()
    clock.advance(1_000)
    stream = Stream("copy", clock)
    stream.schedule(200)  # busy [1000, 1200)
    start, end = stream.reserve_before(0, 50, name="late")
    assert start >= 1_000
    assert end - start == 50
    assert stream.busy_until_ns == max(1_200, end)


def test_reserve_in_the_past_is_clamped_to_now():
    clock = DeviceClock()
    clock.advance(2_000)
    stream = Stream("copy", clock)
    start, end = stream.reserve(0, 100)
    assert (start, end) == (2_000, 2_100)
