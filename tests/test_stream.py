"""Tests for the stream model."""

import pytest

from repro.device.clock import DeviceClock
from repro.device.stream import Stream


def test_stream_schedules_back_to_back_operations():
    clock = DeviceClock()
    stream = Stream("compute", clock)
    start1, end1 = stream.schedule(100, name="k1")
    start2, end2 = stream.schedule(50, name="k2")
    assert (start1, end1) == (0, 100)
    assert (start2, end2) == (100, 150)
    assert stream.busy_time_ns() == 150
    assert stream.idle_time_ns() == 0


def test_stream_start_waits_for_device_time():
    clock = DeviceClock()
    stream = Stream("copy", clock)
    stream.schedule(10)
    clock.advance(100)
    start, end = stream.schedule(10)
    assert start == 100
    assert stream.idle_time_ns() == 90


def test_stream_synchronize_advances_clock():
    clock = DeviceClock()
    stream = Stream("compute", clock)
    stream.schedule(500)
    assert clock.now_ns == 0
    stream.synchronize()
    assert clock.now_ns == 500
    # Synchronizing an already-drained stream is a no-op.
    stream.synchronize()
    assert clock.now_ns == 500


def test_stream_rejects_negative_duration():
    stream = Stream("compute", DeviceClock())
    with pytest.raises(ValueError):
        stream.schedule(-1)


def test_stream_ops_get_default_names():
    stream = Stream("s", DeviceClock())
    stream.schedule(1)
    stream.schedule(1, name="named")
    assert stream.ops[0].name == "s-op0"
    assert stream.ops[1].name == "named"
    assert stream.ops[1].duration_ns == 1
