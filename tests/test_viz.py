"""Tests for the ASCII renderers and figure-data export."""

import json

import numpy as np
import pytest

from repro.core.gantt import build_gantt_chart
from repro.core.stats import empirical_cdf, violin_stats
from repro.viz import (
    export_figure_data,
    render_cdf,
    render_gantt,
    render_scatter,
    render_stacked_bars,
    render_table,
    render_violin,
    write_csv_rows,
    write_json,
)


def test_render_gantt_contains_bars_and_footer(simple_trace):
    chart = build_gantt_chart(simple_trace)
    text = render_gantt(chart, width=60, max_rows=10)
    assert "#" in text
    assert "lifetimes" in text
    assert len(text.splitlines()) >= len(chart.rectangles) + 1


def test_render_gantt_empty_chart():
    from repro.core.gantt import GanttChart
    assert "empty" in render_gantt(GanttChart(rectangles=[], iteration_bounds=[], end_ns=0))


def test_render_cdf_axes_and_points():
    cdf = empirical_cdf(np.linspace(1, 100, 50))
    text = render_cdf(cdf, width=40, height=10)
    assert "1.0 |" in text
    assert "0.0 |" in text
    assert "*" in text
    assert "ATI (us)" in text
    assert "empty" in render_cdf(empirical_cdf([]))


def test_render_violin_rows_per_kind():
    violins = {
        "read": violin_stats([1, 2, 3, 4, 100], label="read"),
        "write": violin_stats([5, 6, 7], label="write"),
    }
    text = render_violin(violins)
    assert "read" in text and "write" in text
    assert "O" in text           # median marker
    assert "(no violin data)" in render_violin({})


def test_render_scatter_marks_outliers():
    points = [(float(i), float(i % 7)) for i in range(50)]
    text = render_scatter(points, highlight=[(10.0, 3.0)])
    assert "@" in text
    assert "*" in text
    assert "(no points)" == render_scatter([])


def test_render_stacked_bars_uses_bucket_symbols():
    rows = [
        {"label": "alexnet", "input data": 0.05, "parameters": 0.25,
         "intermediate results": 0.70, "total_bytes": 1024},
        {"label": "resnet50", "input data": 0.02, "parameters": 0.10,
         "intermediate results": 0.88, "total_bytes": 2048},
    ]
    text = render_stacked_bars(rows, ("input data", "parameters", "intermediate results"),
                               label_key="label", width=40)
    assert "#" in text and "P" in text
    assert "alexnet" in text and "resnet50" in text
    assert "legend" in text


def test_render_table_alignment_and_floats():
    rows = [{"name": "a", "value": 0.123456}, {"name": "bb", "value": 2.0}]
    text = render_table(rows)
    lines = text.splitlines()
    assert lines[0].strip().startswith("name")
    assert "0.123" in text
    assert "(empty table)" == render_table([])


def test_write_json_and_csv(tmp_path):
    data = {"x": 1, "nested": {"y": [1, 2, 3]}}
    path = write_json(data, tmp_path / "out" / "data.json")
    assert json.loads(path.read_text())["x"] == 1

    rows = [{"a": 1, "b": "two"}, {"a": 3, "b": "four"}]
    csv_path = write_csv_rows(rows, tmp_path / "rows.csv")
    lines = csv_path.read_text().splitlines()
    assert lines[0] == "a,b"
    assert len(lines) == 3
    empty_path = write_csv_rows([], tmp_path / "empty.csv")
    assert empty_path.read_text() == ""


def test_export_figure_data_writes_both_formats(tmp_path):
    rows = [{"batch_size": 32, "intermediate results": 0.4}]
    paths = export_figure_data("fig6", rows, output_dir=tmp_path / "figures")
    assert paths["csv"].exists()
    assert paths["json"].exists()
    assert json.loads(paths["json"].read_text())[0]["batch_size"] == 32
