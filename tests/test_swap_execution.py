"""Tests for the closed-loop swap-execution engine (repro.swap).

Covers, per the subsystem's contract:

* trace/schema plumbing — the new ``swap_out``/``swap_in`` event kinds are
  recorded, serialized, merged across ranks and **ignored** by the paper's
  block-behavior analyses (ATI pairing, occupation breakdown);
* residency accounting — every eviction is balanced, the resident series
  never exceeds the live series, and the measured peak reduction is the gap
  between the two;
* the predicted-vs-simulated regression — the paper-MLP trace (where Eq. 1
  correctly finds nothing worth swapping at zero overhead) and a deep MLP
  (where the planner hides gigabytes behind compute) must both agree with
  the executed plan within the stated tolerances;
* the unified keep/swap/recompute policy — ``recompute_drop``/``recompute``
  event plumbing, the per-block cheaper-mechanism decisions, the learned
  producer compute times against the offline estimator, and the dominance
  of the unified measured savings over both single-mechanism plans;
* eager/symbolic equivalence for a swapped scenario and multi-rank
  (DeviceGroup) execution;
* the session/sweep/CLI wiring (``config.swap``, the ``swaps`` axis, the
  ``swap_execution`` result payload).
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np
import pytest

from repro.core.ati import compute_interval_arrays
from repro.core.breakdown import occupation_breakdown
from repro.core.events import MemoryCategory, MemoryEventKind
from repro.core.trace import MemoryTrace, merge_rank_traces
from repro.device.hooks import CountingListener
from repro.errors import ConfigurationError
from repro.experiments.configs import paper_mlp_config
from repro.experiments.sweep import SweepGrid, run_scenario
from repro.swap import (
    EXECUTION_POLICIES,
    SwapExecutor,
    available_execution_policies,
    get_execution_policy,
)
from repro.train.session import TrainingRunConfig, run_training_session

from tests.helpers import build_trace
from tests.test_symbolic_equivalence import event_stream, lifetime_stream


DEEP_MLP = dict(
    model="mlp", dataset="two_cluster", batch_size=2048, iterations=7,
    execution_mode="symbolic",
    model_kwargs={"hidden_dim": 8192, "num_hidden_layers": 6},
)

SMALL_SWAPPED = dict(
    model="mlp", dataset="two_cluster", batch_size=512, iterations=5,
    swap="zero_offload",
)


def run_swapped(swap="planner", **overrides):
    config = TrainingRunConfig(**{**DEEP_MLP, **overrides, "swap": swap})
    return run_training_session(config)


@lru_cache(maxsize=None)
def deep_result(swap):
    """One deep-MLP session per swap mode, shared across this module's tests."""
    return run_swapped(swap)


def run_manual_policy(policy, **overrides):
    """Run the deep-MLP config with an explicit policy instance attached.

    Mirrors ``run_training_session``'s wiring (same optimizer, loader and
    trainer) but lets the test hand the executor a configured policy object
    — e.g. the pure-recompute twin ``UnifiedExecutionPolicy(enable_swap=False)``
    that the session-level registry cannot express.
    """
    from repro.core.profiler import MemoryProfiler
    from repro.data.datasets import build_dataset
    from repro.data.loader import DataLoader
    from repro.models.registry import build_model
    from repro.nn.loss import CrossEntropyLoss
    from repro.nn.optim import SGD
    from repro.train.session import build_device_group
    from repro.train.trainer import DataParallelTrainer

    config = TrainingRunConfig(**{**DEEP_MLP, **overrides})
    group = build_device_group(config)
    device = group.primary
    executor = SwapExecutor(device, policy,
                            capacity_bytes=config.device_memory_capacity)
    device.attach_swap_executor(executor)
    profiler = MemoryProfiler(device)
    profiler.start()
    model = build_model(config.model, device,
                        rng=np.random.default_rng(config.seed),
                        **dict(config.model_kwargs))
    loader = DataLoader(build_dataset(config.dataset, seed=config.seed),
                        batch_size=config.batch_size,
                        host_latency=config.host_latency)
    trainer = DataParallelTrainer(
        group, [model], loader,
        [SGD(model.parameters(), lr=config.learning_rate,
             momentum=config.momentum)],
        [CrossEntropyLoss(device, name="loss")],
        recorders=[profiler], swap_executors=[executor])
    trainer.train(config.iterations)
    executor.finalize()
    profiler.stop()
    return profiler.trace(), executor.summary()


@lru_cache(maxsize=None)
def pure_recompute_result():
    """The deep MLP under rematerialization only (no transfers allowed)."""
    from repro.swap.policies import UnifiedExecutionPolicy
    return run_manual_policy(UnifiedExecutionPolicy(enable_swap=False))


# -- registry / wiring -----------------------------------------------------------------


def test_execution_policy_registry():
    assert available_execution_policies() == ("planner", "swap_advisor",
                                              "zero_offload", "lru", "unified")
    for name in EXECUTION_POLICIES:
        assert get_execution_policy(name).name == name
    with pytest.raises(ValueError, match="unknown swap execution policy"):
        get_execution_policy("nope")


def test_unknown_swap_mode_rejected_by_session():
    config = TrainingRunConfig(**{**SMALL_SWAPPED, "swap": "bogus"})
    with pytest.raises(ConfigurationError, match="unknown swap mode"):
        run_training_session(config)


def test_only_one_executor_per_device():
    from repro.device.device import Device
    device = Device()
    device.attach_swap_executor(SwapExecutor(device, "lru"))
    with pytest.raises(ConfigurationError):
        device.attach_swap_executor(SwapExecutor(device, "lru"))


def test_baseline_policies_expose_executable_twins():
    from repro.baselines.policy import get_policy
    assert get_policy("planner").make_executable().name == "planner"
    assert get_policy("swap_advisor").make_executable().name == "swap_advisor"
    assert get_policy("zero_offload").make_executable(world_size=4).world_size == 4
    with pytest.raises(ValueError, match="analysis-only"):
        get_policy("recompute").make_executable()


def test_counting_listener_counts_swap_events():
    listener = CountingListener()
    listener.on_swap_out(None, 10, "planner")
    listener.on_swap_in(None, 10, "prefetch")
    assert listener.swap_outs == 1
    assert listener.swap_ins == 1


# -- trace plumbing --------------------------------------------------------------------


def swap_trace():
    """A tiny hand-built trace with one swapped idle interval."""
    return build_trace([
        ("malloc", 0, 1, 100),
        ("write", 10, 1, 100),
        ("swap_out", 20, 1, 100),
        ("swap_in", 80, 1, 100),
        ("read", 90, 1, 100),
        ("free", 100, 1, 100),
    ])


def test_swap_kinds_serialize_and_round_trip():
    trace = swap_trace()
    rebuilt = MemoryTrace.from_dict(trace.to_dict())
    assert [e.kind for e in rebuilt.swap_events()] == [
        MemoryEventKind.SWAP_OUT, MemoryEventKind.SWAP_IN]
    assert rebuilt.has_swap_events()


def test_swap_kinds_csv_round_trip(tmp_path):
    import csv

    path = swap_trace().export_events_csv(tmp_path / "events.csv")
    with open(path, newline="") as handle:
        kinds = [row["kind"] for row in csv.DictReader(handle)]
    assert kinds == ["malloc", "write", "swap_out", "swap_in", "read", "free"]


def test_ati_and_breakdown_ignore_swap_traffic():
    """Swap events are runtime actions, not the paper's block behaviors."""
    with_swaps = swap_trace()
    without = build_trace([
        ("malloc", 0, 1, 100),
        ("write", 10, 1, 100),
        ("read", 90, 1, 100),
        ("free", 100, 1, 100),
    ])
    a = compute_interval_arrays(with_swaps)
    b = compute_interval_arrays(without)
    assert a.interval_ns.tolist() == b.interval_ns.tolist() == [80]
    assert (occupation_breakdown(with_swaps).bucket_bytes
            == occupation_breakdown(without).bucket_bytes)
    assert with_swaps.peak_live_bytes() == without.peak_live_bytes() == 100


def test_resident_series_dips_while_swapped_out():
    trace = swap_trace()
    timestamps, resident = trace.resident_bytes_series()
    assert list(zip(timestamps.tolist(), resident.tolist())) == [
        (0, 100), (20, 0), (80, 100), (100, 0)]
    assert trace.peak_resident_bytes() == 100
    # the allocation view is untouched by swapping
    assert trace.peak_live_bytes() == 100


def test_resident_deltas_balance_on_discard():
    trace = build_trace([
        ("malloc", 0, 1, 64),
        ("write", 5, 1, 64),
        ("swap_out", 10, 1, 64),
        ("swap_in", 20, 1, 64),   # the engine's pre-free "discard"
        ("free", 20, 1, 64),
    ])
    _, resident = trace.resident_bytes_series()
    assert resident.tolist()[-1] == 0
    assert int(resident.min()) >= 0


# -- executor semantics on real sessions ----------------------------------------------


def test_zero_offload_emits_balanced_swap_events():
    result = run_training_session(TrainingRunConfig(**SMALL_SWAPPED))
    trace = result.trace
    outs = [e for e in trace.events if e.kind is MemoryEventKind.SWAP_OUT]
    ins = [e for e in trace.events if e.kind is MemoryEventKind.SWAP_IN]
    assert outs and len(outs) == len(ins)
    # only optimizer state / gradients are offloaded
    assert {e.category for e in outs} <= {MemoryCategory.OPTIMIZER_STATE,
                                          MemoryCategory.PARAMETER_GRADIENT}
    # residency accounting balances over the run and never goes negative
    _, resident = trace.resident_bytes_series()
    assert int(resident.min()) >= 0
    assert trace.peak_resident_bytes() <= trace.peak_live_bytes()
    summary = result.swap_execution
    assert summary["policy"] == "zero_offload"
    assert summary["swap_out_count"] == len(outs)
    assert summary["demand_fetches"] > 0
    assert summary["measured_savings_bytes"] >= 0


def test_swap_events_carry_policy_and_restore_op():
    result = run_training_session(TrainingRunConfig(**SMALL_SWAPPED))
    ops_out = {e.op for e in result.trace.events
               if e.kind is MemoryEventKind.SWAP_OUT}
    ops_in = {e.op for e in result.trace.events
              if e.kind is MemoryEventKind.SWAP_IN}
    assert ops_out == {"zero_offload"}
    assert ops_in <= {"demand", "prefetch", "discard", "shutdown"}
    assert "demand" in ops_in


def test_lru_keeps_resident_peak_near_budget():
    config = TrainingRunConfig(model="mlp", dataset="two_cluster",
                               batch_size=2048, iterations=6,
                               execution_mode="symbolic",
                               model_kwargs={"hidden_dim": 4096,
                                             "num_hidden_layers": 4},
                               swap="lru")
    result = run_training_session(config)
    summary = result.swap_execution
    assert summary["swap_out_count"] > 0
    assert summary["demand_fetches"] > 0
    # the reactive pager costs stall time but reduces the steady peak
    assert summary["measured_savings_bytes"] > 0
    assert summary["stall_ns_total"] > 0
    # the budget (default: 70% of the warm-up peak) is actually enforced —
    # pressure is checked on every residency increase (mallocs AND demand
    # fetches), so the resident peak can overshoot by at most one in-flight
    # block, not by the whole demand burst of an optimizer step
    budget = 0.7 * summary["warmup_peak_bytes"]
    largest_block = 4096 * 4096 * 4    # one hidden-layer weight/grad buffer
    assert summary["peak_resident_bytes"] <= budget + 2 * largest_block


def test_lru_explicit_budget_is_respected():
    """A tighter explicit budget yields a lower resident peak + more stall."""
    from repro.core.profiler import MemoryProfiler
    from repro.data.datasets import build_dataset
    from repro.data.loader import DataLoader
    from repro.models.registry import build_model
    from repro.nn.loss import CrossEntropyLoss
    from repro.nn.optim import SGD
    from repro.swap.policies import LruExecutionPolicy
    from repro.train.session import build_device_group
    from repro.train.trainer import Trainer

    def run_with_budget(budget_bytes):
        config = TrainingRunConfig(
            model="mlp", dataset="two_cluster", batch_size=2048, iterations=6,
            execution_mode="symbolic",
            model_kwargs={"hidden_dim": 4096, "num_hidden_layers": 4})
        device = build_device_group(config).primary
        executor = SwapExecutor(
            device, LruExecutionPolicy(budget_bytes=budget_bytes))
        device.attach_swap_executor(executor)
        profiler = MemoryProfiler(device)
        profiler.start()
        model = build_model(config.model, device,
                            rng=np.random.default_rng(0),
                            **dict(config.model_kwargs))
        loader = DataLoader(build_dataset(config.dataset, seed=0),
                            batch_size=config.batch_size)
        trainer = Trainer(model, loader,
                          SGD(model.parameters(), lr=0.01, momentum=0.9),
                          CrossEntropyLoss(device, name="loss"), device,
                          recorder=executor)
        trainer.train(config.iterations)
        executor.finalize()
        profiler.stop()
        return executor.summary()

    largest_block = 4096 * 4096 * 4
    tight = run_with_budget(300_000_000)
    loose = run_with_budget(500_000_000)
    assert tight.peak_resident_bytes <= 300_000_000 + 2 * largest_block
    assert loose.peak_resident_bytes <= 500_000_000 + 2 * largest_block
    assert tight.peak_resident_bytes < loose.peak_resident_bytes
    assert tight.stall_ns_total > loose.stall_ns_total


def test_swap_stalls_lengthen_iterations():
    """Stalls are real simulated time: swapped steps are never shorter."""
    base = TrainingRunConfig(**{**SMALL_SWAPPED, "swap": "off"})
    swapped = TrainingRunConfig(**SMALL_SWAPPED)
    t_off = run_training_session(base).iteration_stats
    t_on = run_training_session(swapped).iteration_stats
    total_off = sum(s.duration_ns for s in t_off)
    total_on = sum(s.duration_ns for s in t_on)
    assert total_on >= total_off


# -- predicted vs simulated (the cost-model-accuracy regression) -----------------------


#: Stated tolerance: measured and predicted peak reduction agree within 5% of
#: the workload's live peak (docs/swapping.md documents the methodology).
SAVINGS_TOLERANCE_FRACTION = 0.05


def test_paper_mlp_planner_predicts_and_measures_nothing():
    """On the paper MLP trace Eq. 1 finds no zero-overhead swap — and the
    executed engine agrees exactly: no swaps, no stalls, no reduction."""
    config = paper_mlp_config(batch_size=4096, iterations=5)
    config.swap = "planner"
    result = run_training_session(config)
    summary = result.swap_execution
    assert summary["swap_out_count"] == 0
    assert summary["stall_ns_total"] == 0
    assert summary["measured_savings_bytes"] == 0
    assert summary["predicted"]["savings_bytes"] == 0
    assert summary["predicted"]["total_overhead_ns"] == 0
    assert not result.trace.has_swap_events()


def test_deep_mlp_planner_predicted_vs_simulated():
    """Where the planner does act, prediction and execution must agree."""
    result = deep_result("planner")
    summary = result.swap_execution
    predicted = summary["predicted"]
    assert summary["swap_out_count"] > 0
    assert summary["prefetch_hits"] > 0
    assert predicted["savings_bytes"] > 0
    assert summary["measured_savings_bytes"] > 0
    # peak reduction: measured vs predicted within the stated tolerance
    gap = abs(summary["measured_savings_bytes"] - predicted["savings_bytes"])
    assert gap <= SAVINGS_TOLERANCE_FRACTION * summary["peak_live_bytes"]
    # overhead: the plan promises zero (Eq.-1-feasible candidates only); the
    # steady-state iterations must be within 2% of the unswapped step time
    # (the two transition iterations may stall while the plan settles).
    steps = result.iteration_stats
    unswapped = steps[1].duration_ns     # warm-up steady step
    steady = steps[-1].duration_ns
    assert steady <= 1.02 * unswapped


def test_deep_mlp_trace_reports_measured_reduction():
    """The acceptance-criterion shape: swap events in the trace plus
    measured-vs-predicted numbers in the session payload."""
    result = deep_result("planner")
    trace = result.trace
    assert trace.has_swap_events()
    kinds = {e.kind for e in trace.swap_events()}
    assert kinds == {MemoryEventKind.SWAP_OUT, MemoryEventKind.SWAP_IN}
    # the trace itself exposes the measured reduction: the resident peak of
    # the steady phase sits below the allocation peak
    assert trace.peak_resident_bytes() <= trace.peak_live_bytes()
    summary = result.swap_execution
    for key in ("measured_savings_bytes", "stall_ns_per_iteration",
                "predicted"):
        assert key in summary


# -- the unified keep/swap/recompute policy -------------------------------------------


def recompute_trace():
    """A tiny hand-built trace with one rematerialized idle interval."""
    return build_trace([
        ("malloc", 0, 1, 100),
        ("write", 10, 1, 100),
        ("recompute_drop", 20, 1, 100),
        ("recompute", 80, 1, 100),
        ("read", 90, 1, 100),
        ("free", 100, 1, 100),
    ])


def test_recompute_kinds_serialize_and_round_trip():
    trace = recompute_trace()
    rebuilt = MemoryTrace.from_dict(trace.to_dict())
    assert [e.kind for e in rebuilt.recompute_events()] == [
        MemoryEventKind.RECOMPUTE_DROP, MemoryEventKind.RECOMPUTE]
    assert rebuilt.has_recompute_events()
    assert not swap_trace().has_recompute_events()


def test_recompute_kinds_csv_round_trip(tmp_path):
    import csv

    path = recompute_trace().export_events_csv(tmp_path / "events.csv")
    with open(path, newline="") as handle:
        kinds = [row["kind"] for row in csv.DictReader(handle)]
    assert kinds == ["malloc", "write", "recompute_drop", "recompute",
                     "read", "free"]


def test_resident_series_dips_while_dropped():
    trace = recompute_trace()
    timestamps, resident = trace.resident_bytes_series()
    assert list(zip(timestamps.tolist(), resident.tolist())) == [
        (0, 100), (20, 0), (80, 100), (100, 0)]
    # allocation semantics are untouched by rematerialization
    assert trace.peak_live_bytes() == 100


def test_ati_and_breakdown_ignore_recompute_traffic():
    with_drops = recompute_trace()
    without = build_trace([
        ("malloc", 0, 1, 100),
        ("write", 10, 1, 100),
        ("read", 90, 1, 100),
        ("free", 100, 1, 100),
    ])
    a = compute_interval_arrays(with_drops)
    b = compute_interval_arrays(without)
    assert a.interval_ns.tolist() == b.interval_ns.tolist()
    assert (occupation_breakdown(with_drops).bucket_bytes
            == occupation_breakdown(without).bucket_bytes)


def test_counting_listener_counts_recompute_events():
    listener = CountingListener()
    listener.on_recompute_drop(None, 10, "unified")
    listener.on_recompute(None, 10, "demand")
    assert listener.recompute_drops == 1
    assert listener.recomputes == 1


def test_unified_policy_accepts_planning_kwargs():
    policy = get_execution_policy("unified", capacity_bytes=123,
                                  enable_recompute=False)
    assert policy.name == "unified"
    assert policy.capacity_bytes == 123
    assert policy.enable_swap and not policy.enable_recompute


def test_unified_emits_balanced_recompute_events():
    trace = deep_result("unified").trace
    drops = [e for e in trace.events
             if e.kind is MemoryEventKind.RECOMPUTE_DROP]
    recomputes = [e for e in trace.events
                  if e.kind is MemoryEventKind.RECOMPUTE]
    assert drops and len(drops) == len(recomputes)
    # only forward activations are rematerializable by producer replay
    assert {e.category for e in drops} == {MemoryCategory.ACTIVATION}
    assert {e.op for e in recomputes} <= {"demand", "discard", "shutdown"}
    _, resident = trace.resident_bytes_series()
    assert int(resident.min()) >= 0


def test_unified_summary_accounts_recompute_time():
    summary = deep_result("unified").swap_execution
    assert summary["policy"] == "unified"
    assert summary["recompute_drop_count"] == summary["recompute_count"] > 0
    assert summary["bytes_recompute_dropped"] > 0
    assert summary["recompute_ns_total"] > 0
    assert summary["recompute_ns_per_iteration"] > 0
    # rematerialization rides the compute clock, not the copy stream
    assert summary["bytes_recomputed"] == 0 or summary["bytes_recomputed"] > 0


def test_unified_decisions_record_cheaper_mechanism():
    predicted = deep_result("unified").swap_execution["predicted"]
    decisions = predicted["decisions"]
    assert decisions
    by_mechanism = {"swap": 0, "recompute": 0, "keep": 0}
    for decision in decisions:
        by_mechanism[decision["mechanism"]] += 1
        if decision["mechanism"] == "recompute":
            assert (decision["recompute_cost_ns"]
                    <= decision["effective_swap_cost_ns"])
        elif decision["mechanism"] == "swap":
            assert math.isfinite(decision["effective_swap_cost_ns"])
    assert by_mechanism["swap"] == predicted["num_swapped"] > 0
    assert by_mechanism["recompute"] == predicted["num_recomputed"] > 0
    assert by_mechanism["keep"] == predicted["num_kept"]
    assert (predicted["num_swapped"] + predicted["num_recomputed"]
            == predicted["num_selected"])


def test_unified_measured_savings_dominate_pure_swap():
    unified = deep_result("unified").swap_execution
    planner = deep_result("planner").swap_execution
    assert (unified["measured_savings_bytes"]
            >= planner["measured_savings_bytes"] > 0)


def test_unified_measured_savings_dominate_pure_recompute():
    unified = deep_result("unified").swap_execution
    _, recompute_only = pure_recompute_result()
    assert recompute_only.recompute_drop_count > 0
    assert (unified["measured_savings_bytes"]
            >= recompute_only.measured_savings_bytes > 0)


def test_unified_predicted_vs_measured_within_tolerance():
    """The acceptance bar: unified prediction within 5% of the live peak."""
    summary = deep_result("unified").swap_execution
    predicted = summary["predicted"]
    assert predicted["savings_bytes"] > 0
    gap = abs(summary["measured_savings_bytes"] - predicted["savings_bytes"])
    assert gap <= SAVINGS_TOLERANCE_FRACTION * summary["peak_live_bytes"]


def test_unified_stalls_no_worse_than_pure_swap():
    """Replacing transfers with replay relieves the copy stream: on the same
    profile the unified plan never stalls longer than the pure planner."""
    unified = deep_result("unified").swap_execution
    planner = deep_result("planner").swap_execution
    assert unified["stall_ns_total"] <= planner["stall_ns_total"]


def test_unified_learned_compute_costs_match_offline_twin():
    """The executor's warm-up learning rule and the offline estimator
    (per_block_compute_times on an undistorted trace) agree exactly."""
    from repro.baselines.recompute import per_block_compute_times

    clean = deep_result("off").trace
    offline = per_block_compute_times(clean)
    by_tag = {}
    for lifetime in clean.lifetimes:
        if lifetime.block_id in offline:
            by_tag[lifetime.tag] = offline[lifetime.block_id]
    decisions = deep_result("unified").swap_execution["predicted"]["decisions"]
    learned = [d for d in decisions if d["recompute_cost_ns"] is not None]
    assert learned
    for decision in learned:
        assert decision["tag"] in by_tag
        assert decision["recompute_cost_ns"] == by_tag[decision["tag"]]


def test_unified_predicted_recompute_overhead_bounds_measured():
    """The predicted overhead (every selected producer replayed once per
    iteration) is an upper bound: a dropped block freed before its next use
    is discarded without ever paying its replay cost."""
    summary = deep_result("unified").swap_execution
    predicted_per_iter = summary["predicted"]["recompute_overhead_ns"]
    assert predicted_per_iter > 0
    assert 0 < summary["recompute_ns_per_iteration"] <= predicted_per_iter


def test_unified_sweep_row_reports_recompute_columns():
    grid = SweepGrid(models=("mlp",), batch_sizes=(512,), iterations=(5,),
                     swaps=("unified",))
    result = run_scenario(grid.expand()[0])
    assert result.scenario["swap"] == "unified"
    assert result.scenario["device_memory_capacity"] is None
    row = result.row()
    assert row["recompute_ms"] >= 0
    assert row["pressure_stall_ms"] == 0
    assert row["peak_resident_mib"] >= 0


# -- eager/symbolic equivalence and multi-rank ----------------------------------------


EQUIVALENCE_CONFIG = dict(
    model="mlp", dataset="two_cluster", batch_size=512, iterations=5,
    swap="zero_offload",
)


def test_swapped_run_eager_symbolic_equivalence():
    eager = run_training_session(
        TrainingRunConfig(**EQUIVALENCE_CONFIG, execution_mode="eager"))
    symbolic = run_training_session(
        TrainingRunConfig(**EQUIVALENCE_CONFIG, execution_mode="symbolic"))
    assert event_stream(eager.trace) == event_stream(symbolic.trace)
    assert lifetime_stream(eager.trace) == lifetime_stream(symbolic.trace)
    assert eager.swap_execution == symbolic.swap_execution


def test_multi_rank_swapped_run_merges_and_slices():
    config = TrainingRunConfig(**{**SMALL_SWAPPED, "n_devices": 2})
    result = run_training_session(config)
    trace = result.trace
    swap_ranks = {e.device_rank for e in trace.swap_events()}
    assert swap_ranks == {0, 1}
    # replicas are symmetric: each rank slice carries half the swap traffic
    per_rank = [len(trace.for_rank(rank).swap_events()) for rank in (0, 1)]
    assert per_rank[0] == per_rank[1] > 0
    assert sum(per_rank) == len(trace.swap_events())
    # and a manual re-merge of the rank traces is consistent
    remerged = merge_rank_traces(result.rank_traces)
    assert len(remerged.swap_events()) == len(trace.swap_events())
    assert result.swap_execution["n_ranks"] == 2


def test_merge_rank_traces_offsets_swap_block_ids():
    rank0 = swap_trace()
    rank1 = swap_trace()
    merged = merge_rank_traces([rank0, rank1])
    outs = [e for e in merged.events if e.kind is MemoryEventKind.SWAP_OUT]
    assert len(outs) == 2
    assert outs[0].block_id != outs[1].block_id
    _, resident = merged.resident_bytes_series()
    assert int(resident.min()) >= 0
    assert resident.tolist()[-1] == 0


# -- sweep / scenario integration ------------------------------------------------------


def test_sweep_grid_swaps_axis_expands_and_validates():
    grid = SweepGrid(models=("mlp",), swaps=("off", "planner"))
    scenarios = grid.expand()
    assert grid.size() == len(scenarios) == 2
    assert {s.config.swap for s in scenarios} == {"off", "planner"}
    keys = {s.key() for s in scenarios}
    assert len(keys) == 2  # swap mode is part of the cache identity
    with pytest.raises(ValueError, match="unknown swap execution mode"):
        SweepGrid(swaps=("bogus",)).expand()


def test_run_scenario_carries_swap_execution():
    grid = SweepGrid(models=("mlp",), batch_sizes=(512,), iterations=(5,),
                     swaps=("zero_offload",))
    scenario = grid.expand()[0]
    result = run_scenario(scenario)
    assert result.scenario["swap"] == "zero_offload"
    assert result.swap_execution is not None
    assert result.swap_execution["policy"] == "zero_offload"
    row = result.row()
    assert "swap_stall_ms" in row
    assert "swap_measured_mib" in row
    assert "swap_predicted_mib" in row
    # serialization round-trips through the cache schema
    from repro.experiments.sweep import ScenarioResult
    rebuilt = ScenarioResult.from_dict(result.to_dict())
    assert rebuilt.swap_execution == result.swap_execution
