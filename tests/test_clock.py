"""Tests for the simulated device clock."""

import pytest

from repro.device.clock import DeviceClock
from repro.errors import ClockError


def test_clock_starts_at_zero_by_default():
    clock = DeviceClock()
    assert clock.now_ns == 0
    assert clock.now_us == 0.0
    assert clock.now_s == 0.0


def test_clock_advance_accumulates():
    clock = DeviceClock()
    clock.advance(1_000)
    clock.advance(500)
    assert clock.now_ns == 1_500
    assert clock.now_us == pytest.approx(1.5)


def test_clock_advance_rejects_negative_delta():
    clock = DeviceClock()
    with pytest.raises(ClockError):
        clock.advance(-1)


def test_clock_advance_to_absolute_time():
    clock = DeviceClock(start_ns=100)
    clock.advance_to(250)
    assert clock.now_ns == 250
    with pytest.raises(ClockError):
        clock.advance_to(100)


def test_clock_rejects_negative_start():
    with pytest.raises(ClockError):
        DeviceClock(start_ns=-5)


def test_clock_observers_receive_old_and_new_time():
    clock = DeviceClock()
    seen = []
    clock.add_observer(lambda old, new: seen.append((old, new)))
    clock.advance(10)
    clock.advance(0)      # zero advances do not notify
    clock.advance(5)
    assert seen == [(0, 10), (10, 15)]


def test_clock_remove_observer():
    clock = DeviceClock()
    seen = []
    observer = lambda old, new: seen.append(new)  # noqa: E731
    clock.add_observer(observer)
    clock.advance(1)
    clock.remove_observer(observer)
    clock.advance(1)
    assert seen == [1]


def test_clock_reset_keeps_observers():
    clock = DeviceClock()
    seen = []
    clock.add_observer(lambda old, new: seen.append(new))
    clock.advance(5)
    clock.reset()
    assert clock.now_ns == 0
    clock.advance(3)
    assert seen == [5, 3]


def test_clock_advance_rounds_fractional_nanoseconds():
    clock = DeviceClock()
    clock.advance(10.6)
    assert clock.now_ns == 11
