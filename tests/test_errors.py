"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
            assert issubclass(obj, errors.ReproError)


def test_out_of_memory_error_carries_sizes():
    error = errors.OutOfMemoryError(requested=100, free=10, reserved=50, capacity=60)
    assert error.requested == 100
    assert error.free == 10
    assert error.reserved == 50
    assert error.capacity == 60
    assert "100 bytes" in str(error)


def test_out_of_memory_is_a_device_error():
    assert issubclass(errors.OutOfMemoryError, errors.DeviceError)
    assert issubclass(errors.DeviceError, errors.ReproError)


def test_trace_errors_subclass_trace_error():
    assert issubclass(errors.EmptyTraceError, errors.TraceError)
    assert issubclass(errors.TraceFormatError, errors.TraceError)


def test_tensor_errors_subclass_tensor_error():
    assert issubclass(errors.ShapeError, errors.TensorError)
    assert issubclass(errors.DTypeError, errors.TensorError)
    assert issubclass(errors.MaterializationError, errors.TensorError)
