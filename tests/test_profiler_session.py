"""Tests for the high-level profiler and profiled training sessions."""

import numpy as np
import pytest

from repro.core.profiler import MemoryProfiler
from repro.errors import ConfigurationError, TraceError
from repro.tensor import functional as F
from repro.tensor import randn
from repro.train.session import TrainingRunConfig, build_device, run_training_session


def test_profiler_context_manager_records_and_detaches(test_device):
    with MemoryProfiler(test_device) as profiler:
        a = randn(test_device, (8, 8))
        b = randn(test_device, (8, 8))
        F.matmul(a, b)
        assert profiler.event_count() > 0
    count_at_exit = profiler.event_count()
    randn(test_device, (4, 4))                       # not recorded anymore
    assert profiler.event_count() == count_at_exit
    assert len(profiler.trace()) == count_at_exit


def test_profiler_metadata_includes_device_description(test_device):
    with MemoryProfiler(test_device, metadata={"note": "hi"}) as profiler:
        randn(test_device, (2,))
    trace = profiler.trace()
    assert trace.metadata["note"] == "hi"
    assert trace.metadata["allocator"] == "caching"
    assert trace.metadata["execution_mode"] == "eager"


def test_profiler_analysis_shortcuts(small_mlp_session, test_device):
    with MemoryProfiler(test_device) as profiler:
        profiler.begin_iteration(0)
        a = randn(test_device, (16, 16))
        b = randn(test_device, (16, 16))
        c = F.matmul(a, b)
        F.relu_forward(c)
        profiler.end_iteration(0)
    assert profiler.ati_summary().count >= 1
    assert len(profiler.gantt_chart()) >= 3
    assert profiler.breakdown().total_bytes > 0
    assert profiler.outlier_report().count == 0
    assert profiler.pattern_report(skip_warmup=0).summary()["num_iterations"] == 1


def test_profiler_require_attached(test_device):
    profiler = MemoryProfiler(test_device)
    with pytest.raises(TraceError):
        profiler.require_attached()
    profiler.start()
    profiler.require_attached()
    profiler.stop()


def test_build_device_applies_capacity_override():
    config = TrainingRunConfig(device_memory_capacity=123456789)
    device = build_device(config)
    assert device.spec.memory_capacity == 123456789


def test_run_training_session_end_to_end_eager():
    config = TrainingRunConfig(model="mlp", model_kwargs={"hidden_dim": 32},
                               dataset="two_cluster", batch_size=16, iterations=3,
                               execution_mode="eager", label="session-test")
    result = run_training_session(config)
    assert result.label == "session-test"
    assert len(result.iteration_stats) == 3
    assert all(loss is not None for loss in result.losses())
    assert result.parameter_count > 0
    assert result.peak_allocated_bytes > 0
    assert result.trace.iterations() == [0, 1, 2]
    assert result.allocator_stats["total_alloc_count"] > 0


def test_run_training_session_virtual_adam():
    config = TrainingRunConfig(model="lenet5", dataset="mnist", batch_size=8, iterations=2,
                               execution_mode="virtual", optimizer="adam")
    result = run_training_session(config)
    assert all(loss is None for loss in result.losses())
    assert len(result.trace) > 0


def test_run_training_session_validations():
    with pytest.raises(ConfigurationError):
        run_training_session(TrainingRunConfig(iterations=0))
    with pytest.raises(ConfigurationError):
        run_training_session(TrainingRunConfig(optimizer="lbfgs", iterations=1,
                                               model="mlp",
                                               model_kwargs={"hidden_dim": 8},
                                               batch_size=4))


def test_session_config_describe_mentions_model_and_batch():
    config = TrainingRunConfig(model="alexnet", dataset="cifar100", batch_size=128)
    description = config.describe()
    assert "alexnet" in description
    assert "128" in description
