"""Tests for synthetic datasets and the data loader."""

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    HostLatencyModel,
    SyntheticCIFAR100,
    SyntheticImageNet,
    SyntheticMNIST,
    TwoClusterDataset,
    build_dataset,
)
from repro.errors import ConfigurationError


def test_cifar100_shapes_and_classes():
    dataset = SyntheticCIFAR100(seed=0)
    inputs, labels = dataset.sample_batch(8)
    assert inputs.shape == (8, 3, 32, 32)
    assert inputs.dtype == np.float32
    assert labels.shape == (8,)
    assert labels.dtype == np.int64
    assert labels.max() < 100
    assert dataset.num_classes == 100


def test_imagenet_shapes():
    dataset = SyntheticImageNet(seed=0)
    inputs, labels = dataset.sample_batch(2)
    assert inputs.shape == (2, 3, 224, 224)
    assert dataset.num_classes == 1000
    assert dataset.batch_bytes(2) == 2 * 3 * 224 * 224 * 4


def test_mnist_shapes():
    inputs, _ = SyntheticMNIST(seed=0).sample_batch(4)
    assert inputs.shape == (4, 1, 28, 28)


def test_two_cluster_dataset_is_separable():
    dataset = TwoClusterDataset(input_dim=2, seed=0, separation=6.0)
    inputs, labels = dataset.sample_batch(500)
    centers = np.array([inputs[labels == 0].mean(axis=0), inputs[labels == 1].mean(axis=0)])
    assert np.linalg.norm(centers[0] - centers[1]) > 3.0


def test_dataset_batch_size_validation():
    with pytest.raises(ConfigurationError):
        SyntheticCIFAR100().sample_batch(0)


def test_build_dataset_by_name():
    assert build_dataset("cifar100").name == "cifar100"
    assert build_dataset("two_cluster", input_dim=4).sample_shape == (4,)
    with pytest.raises(ConfigurationError):
        build_dataset("imagenet22k")


def test_sampling_is_deterministic_per_seed():
    first, _ = SyntheticCIFAR100(seed=7).sample_batch(4)
    second, _ = SyntheticCIFAR100(seed=7).sample_batch(4)
    np.testing.assert_allclose(first, second)


def test_host_latency_model_scales_with_batch():
    model = HostLatencyModel(per_batch_ns=1_000, per_sample_ns=100, per_byte_ns=0.5)
    small = model.batch_time_ns(batch_size=1, batch_bytes=10)
    large = model.batch_time_ns(batch_size=100, batch_bytes=1000)
    assert small == 1_000 + 100 + 5
    assert large > small


def test_data_loader_yields_batches_and_host_time():
    dataset = SyntheticCIFAR100(seed=0)
    loader = DataLoader(dataset, batch_size=16)
    inputs, labels = loader.next_batch()
    assert inputs.shape[0] == 16
    assert loader.host_time_ns() > 0
    assert loader.batch_bytes == dataset.batch_bytes(16)
    assert loader.label_bytes == 16 * 8
    batches = list(loader.batches(3))
    assert len(batches) == 3


def test_data_loader_validates_batch_size():
    with pytest.raises(ConfigurationError):
        DataLoader(SyntheticCIFAR100(), batch_size=0)
