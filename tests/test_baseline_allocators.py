"""Tests for the best-fit and bump ablation allocators."""

import pytest

from repro.device.allocator import BestFitAllocator, BumpAllocator
from repro.device.clock import DeviceClock
from repro.device.hooks import CountingListener
from repro.device.spec import small_test_device
from repro.errors import InvalidFreeError, OutOfMemoryError
from repro.units import KIB, MIB


def make_best_fit(capacity=64 * MIB):
    return BestFitAllocator(small_test_device(capacity), DeviceClock())


def make_bump(capacity=64 * MIB):
    return BumpAllocator(small_test_device(capacity), DeviceClock())


# -- best fit -----------------------------------------------------------------------------


def test_best_fit_reserves_one_arena_upfront():
    allocator = make_best_fit()
    assert allocator.stats.segment_allocs == 1
    assert allocator.reserved_bytes > 0


def test_best_fit_allocates_and_frees():
    allocator = make_best_fit()
    block = allocator.allocate(100 * KIB, tag="x")
    assert block.allocated
    assert allocator.allocated_bytes == block.size
    allocator.free(block)
    assert allocator.allocated_bytes == 0


def test_best_fit_chooses_smallest_sufficient_hole():
    allocator = make_best_fit()
    first = allocator.allocate(1 * MIB)
    second = allocator.allocate(4 * MIB)
    third = allocator.allocate(2 * MIB)
    allocator.free(first)
    allocator.free(third)
    # A 1.5 MiB request fits both holes; best fit should take the 2 MiB one.
    block = allocator.allocate(int(1.5 * MIB))
    assert block.address == third.address
    allocator.free(second)


def test_best_fit_coalesces_adjacent_holes():
    allocator = make_best_fit()
    blocks = [allocator.allocate(1 * MIB) for _ in range(3)]
    for block in blocks:
        allocator.free(block)
    allocator.check_invariants()
    segment = allocator.segments()[0]
    assert segment.is_fully_free()
    free_blocks = [b for b in segment.blocks() if not b.allocated]
    assert len(free_blocks) == 1


def test_best_fit_oom_when_no_hole_fits():
    allocator = make_best_fit(capacity=16 * MIB)
    allocator.allocate(10 * MIB)
    with pytest.raises(OutOfMemoryError):
        allocator.allocate(10 * MIB)


def test_best_fit_double_free_raises():
    allocator = make_best_fit()
    block = allocator.allocate(1024)
    allocator.free(block)
    with pytest.raises(InvalidFreeError):
        allocator.free(block)


# -- bump ----------------------------------------------------------------------------------


def test_bump_never_reuses_memory():
    allocator = make_bump()
    first = allocator.allocate(1 * MIB, tag="a")
    allocator.free(first)
    second = allocator.allocate(1 * MIB, tag="b")
    assert second.address != first.address
    assert second.block_id != first.block_id


def test_bump_oom_at_capacity():
    allocator = make_bump(capacity=4 * MIB)
    allocator.allocate(3 * MIB)
    with pytest.raises(OutOfMemoryError):
        allocator.allocate(2 * MIB)


def test_bump_reset_rewinds_the_cursor():
    allocator = make_bump(capacity=4 * MIB)
    allocator.allocate(3 * MIB)
    allocator.reset()
    block = allocator.allocate(3 * MIB)
    assert block.allocated
    assert allocator.stats.segment_frees >= 1


def test_bump_notifies_listener():
    listener = CountingListener()
    allocator = BumpAllocator(small_test_device(), DeviceClock(), listener)
    block = allocator.allocate(1024)
    allocator.free(block)
    assert listener.mallocs == 1
    assert listener.frees == 1
