"""Tests for the trace recorder and the MemoryTrace container."""

import numpy as np
import pytest

from repro.core.events import MemoryCategory, MemoryEvent, MemoryEventKind
from repro.core.recorder import TraceRecorder
from repro.core.trace import MemoryTrace
from repro.errors import EmptyTraceError, TraceFormatError
from repro.tensor import functional as F
from repro.tensor import randn


def record_some_activity(device):
    recorder = TraceRecorder(device.clock, metadata={"workload": "unit-test"})
    device.add_listener(recorder)
    recorder.begin_iteration(0)
    a = randn(device, (8, 8), tag="a")
    b = randn(device, (8, 8), tag="b")
    c = F.matmul(a, b)
    c.free()
    recorder.end_iteration(0)
    device.remove_listener(recorder)
    return recorder


def test_recorder_captures_all_behavior_kinds(test_device):
    recorder = record_some_activity(test_device)
    trace = recorder.to_trace()
    counts = trace.counts_by_kind()
    assert counts["malloc"] == 3
    assert counts["free"] == 1
    assert counts["write"] >= 3
    assert counts["read"] >= 2
    assert trace.metadata["workload"] == "unit-test"


def test_recorder_tracks_iteration_attribution(test_device):
    recorder = record_some_activity(test_device)
    trace = recorder.to_trace()
    assert trace.iterations() == [0]
    assert all(event.iteration == 0 for event in trace.events)
    mark = trace.iteration_mark(0)
    assert mark is not None and mark.duration_ns() > 0
    assert trace.iteration_mark(7) is None


def test_recorder_lifetimes_open_and_close(test_device):
    recorder = record_some_activity(test_device)
    trace = recorder.to_trace()
    closed = [lt for lt in trace.lifetimes if lt.free_ns is not None]
    live = [lt for lt in trace.lifetimes if lt.is_live]
    assert len(closed) == 1          # only c was freed
    assert len(live) == 2
    assert closed[0].access_count >= 1


def test_recorder_pause_resume(test_device):
    recorder = TraceRecorder(test_device.clock)
    test_device.add_listener(recorder)
    recorder.pause()
    randn(test_device, (4,))
    assert len(recorder) == 0
    recorder.resume()
    randn(test_device, (4,))
    assert len(recorder) > 0


def test_trace_accessors(simple_trace):
    assert len(simple_trace) == 12
    assert simple_trace.block_ids() == [1, 2, 3]
    assert len(simple_trace.access_events()) == 7
    assert len(simple_trace.events_for_block(1)) == 4
    assert simple_trace.counts_by_category()["parameter"] == 4
    assert simple_trace.peak_live_bytes() == 1024 + 4096
    assert simple_trace.duration_ns == 120_000
    grouped = simple_trace.events_by_block()
    assert set(grouped) == {1, 2, 3}


def test_trace_events_in_iteration(simple_trace):
    assert len(simple_trace.events_in_iteration(0)) == 7
    assert len(simple_trace.events_in_iteration(1)) == 5


def test_empty_trace_guards():
    trace = MemoryTrace()
    assert trace.is_empty
    assert trace.duration_ns == 0
    assert trace.peak_live_bytes() == 0
    with pytest.raises(EmptyTraceError):
        trace.require_events()


def test_trace_json_round_trip(tmp_path, simple_trace):
    path = simple_trace.save_json(tmp_path / "trace.json")
    loaded = MemoryTrace.load_json(path)
    assert len(loaded) == len(simple_trace)
    assert loaded.block_ids() == simple_trace.block_ids()
    assert loaded.iterations() == simple_trace.iterations()
    assert loaded.events[0].kind is MemoryEventKind.MALLOC
    assert loaded.lifetimes[0].category is MemoryCategory.PARAMETER


def test_trace_csv_export(tmp_path, simple_trace):
    path = simple_trace.export_events_csv(tmp_path / "events.csv")
    content = path.read_text().splitlines()
    assert content[0].startswith("event_id,kind,timestamp_ns")
    assert len(content) == len(simple_trace) + 1


def test_trace_load_rejects_bad_format(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(TraceFormatError):
        MemoryTrace.load_json(bad)
    with pytest.raises(TraceFormatError):
        MemoryTrace.from_dict({"format_version": 999})


def test_trace_summary_fields(simple_trace):
    summary = simple_trace.summary()
    assert summary["num_events"] == 12
    assert summary["num_blocks"] == 3
    assert summary["num_iterations"] == 2
    assert summary["peak_live_bytes"] == 5120


def test_event_serialization_round_trip():
    event = MemoryEvent(event_id=1, kind=MemoryEventKind.WRITE, timestamp_ns=10,
                        block_id=3, address=0x100, size=64,
                        category=MemoryCategory.ACTIVATION, tag="x", iteration=2, op="k")
    assert MemoryEvent.from_dict(event.to_dict()) == event


def test_event_kind_properties():
    assert MemoryEventKind.READ.is_access
    assert MemoryEventKind.WRITE.is_access
    assert not MemoryEventKind.MALLOC.is_access
    assert MemoryEventKind.MALLOC.is_block_behavior
    assert not MemoryEventKind.SEGMENT_ALLOC.is_block_behavior


def test_category_paper_bucket_mapping():
    assert MemoryCategory.INPUT.paper_bucket() == "input data"
    assert MemoryCategory.LABEL.paper_bucket() == "input data"
    assert MemoryCategory.PARAMETER.paper_bucket() == "parameters"
    assert MemoryCategory.OPTIMIZER_STATE.paper_bucket() == "parameters"
    assert MemoryCategory.ACTIVATION.paper_bucket() == "intermediate results"
    assert MemoryCategory.PARAMETER_GRADIENT.paper_bucket() == "intermediate results"
    assert MemoryCategory.WORKSPACE.paper_bucket() == "intermediate results"


# -- columnar-first recording (PR 4) ------------------------------------------------


def test_recorder_log_is_columnar_and_events_synthesize_lazily(test_device):
    recorder = record_some_activity(test_device)
    trace = recorder.to_trace()
    # The column store is available without ever materializing event objects.
    cols = trace.columns()
    assert len(cols) == len(trace) == len(recorder)
    assert cols.address is not None and cols.address.shape == cols.size.shape
    # Lazy synthesis produces full-fidelity objects (tags, ops, addresses).
    events = trace.events
    assert len(events) == len(cols)
    assert [e.event_id for e in events] == cols.event_id.tolist()
    assert {e.tag for e in events if e.kind is MemoryEventKind.MALLOC} == {"a", "b", "matmul_out"}
    assert any(e.op == "matmul" for e in events)
    assert [e.address for e in events] == cols.address.tolist()


def test_columnar_trace_json_round_trip(tmp_path, test_device):
    recorder = record_some_activity(test_device)
    trace = recorder.to_trace()
    loaded = MemoryTrace.load_json(trace.save_json(tmp_path / "columnar.json"))
    assert [e.to_dict() for e in loaded.events] == [e.to_dict() for e in trace.events]
    assert loaded.peak_live_bytes() == trace.peak_live_bytes()


def test_columnar_trace_event_strings_match_objects(test_device):
    recorder = record_some_activity(test_device)
    trace = recorder.to_trace()
    tags, ops = trace.event_strings()
    assert tags == [e.tag for e in trace.events]
    assert ops == [e.op for e in trace.events]


def test_midrun_trace_snapshots_are_independent(test_device):
    recorder = TraceRecorder(test_device.clock)
    test_device.add_listener(recorder)
    randn(test_device, (4,))
    early = recorder.to_trace()
    early_len = len(early)
    randn(test_device, (4,))
    late = recorder.to_trace()
    assert len(early) == early_len          # earlier snapshot unaffected
    assert len(late) > early_len
    test_device.remove_listener(recorder)
