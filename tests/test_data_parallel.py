"""Tests for the data-parallel trainer, merged traces and rank-aware baselines."""

import numpy as np
import pytest

from repro.baselines.swapping import zero_offload_style_policy
from repro.core.events import MemoryCategory
from repro.core.trace import merge_rank_traces
from repro.errors import ConfigurationError
from repro.train import TrainingRunConfig, run_training_session, shard_batch


def _config(n_devices, execution_mode="virtual", batch_size=32, iterations=2,
            **overrides):
    return TrainingRunConfig(
        model="mlp", model_kwargs={"hidden_dim": 32}, batch_size=batch_size,
        iterations=iterations, execution_mode=execution_mode,
        n_devices=n_devices, **overrides)


# -- batch sharding -------------------------------------------------------------------


def test_shard_batch_splits_along_the_sample_axis():
    batch = np.arange(24).reshape(8, 3)
    shards = shard_batch(batch, 4)
    assert [s.shape for s in shards] == [(2, 3)] * 4
    np.testing.assert_array_equal(np.concatenate(shards), batch)
    assert shard_batch(batch, 1)[0] is batch


def test_shard_batch_rejects_more_devices_than_samples():
    with pytest.raises(ConfigurationError, match="cannot shard"):
        shard_batch(np.zeros((2, 3)), 4)
    with pytest.raises(ConfigurationError, match="at least one sample"):
        run_training_session(_config(n_devices=8, batch_size=4))


# -- the data-parallel step -----------------------------------------------------------


def test_data_parallel_losses_match_single_device():
    """Averaged shard gradients equal the full-batch gradient, so the loss
    curves of n=1 and n=2 training are numerically identical."""
    single = run_training_session(_config(1, execution_mode="eager", iterations=4))
    double = run_training_session(_config(2, execution_mode="eager", iterations=4))
    assert single.losses() == pytest.approx(double.losses(), rel=1e-5)


def test_merged_trace_carries_the_device_rank_dimension():
    session = run_training_session(_config(2))
    trace = session.trace
    assert trace.ranks() == [0, 1]
    assert trace.metadata["n_devices"] == 2
    cols = trace.columns()
    assert set(np.unique(cols.device_rank)) == {0, 1}
    # Block identities stay disjoint across ranks after the merge.
    rank0_blocks = set(trace.for_rank(0).block_ids())
    rank1_blocks = set(trace.for_rank(1).block_ids())
    assert rank0_blocks and rank1_blocks
    assert rank0_blocks.isdisjoint(rank1_blocks)
    # Event ids are renumbered contiguously in time order.
    ids = [event.event_id for event in trace.events]
    assert ids == list(range(len(ids)))
    timestamps = [event.timestamp_ns for event in trace.events]
    assert timestamps == sorted(timestamps)


def test_per_rank_slices_are_symmetric():
    session = run_training_session(_config(2))
    rank0 = session.trace.for_rank(0)
    rank1 = session.trace.for_rank(1)
    assert len(rank0) == len(rank1)
    assert rank0.peak_live_bytes() == rank1.peak_live_bytes()


def test_allreduce_emits_gradient_read_write_behaviors():
    session = run_training_session(_config(2))
    ops = {event.op for event in session.trace.events}
    assert "grad_allreduce" in ops
    reads = [event for event in session.trace.events
             if event.op == "grad_allreduce" and event.kind.value == "read"]
    writes = [event for event in session.trace.events
              if event.op == "grad_allreduce" and event.kind.value == "write"]
    # One read and one write per gradient buffer per rank per iteration.
    assert len(reads) == len(writes) > 0
    assert all(event.category is MemoryCategory.PARAMETER_GRADIENT
               for event in reads + writes)


def test_collective_time_grows_with_replicas_and_slows_the_step():
    sessions = {n: run_training_session(_config(n, batch_size=64))
                for n in (1, 2, 4)}
    assert sessions[1].collective is None
    t2 = sessions[2].collective["total_time_ns"]
    t4 = sessions[4].collective["total_time_ns"]
    assert 0 < t2 < t4
    assert sessions[2].collective["count"] == 2  # one allreduce per iteration


def test_naive_allreduce_is_slower_than_ring_in_session():
    ring = run_training_session(_config(4, allreduce_algorithm="ring"))
    naive = run_training_session(_config(4, allreduce_algorithm="naive"))
    assert (naive.collective["total_time_ns"] > ring.collective["total_time_ns"])


def test_faster_interconnect_shrinks_the_collective():
    pcie = run_training_session(_config(4, interconnect="pcie_gen3"))
    nvlink = run_training_session(_config(4, interconnect="nvlink2"))
    assert (nvlink.collective["total_time_ns"] < pcie.collective["total_time_ns"])


def test_per_device_peak_shrinks_with_sharding():
    peaks = [run_training_session(_config(n, batch_size=64)).peak_allocated_bytes
             for n in (1, 2, 4)]
    assert peaks[0] > peaks[1] > peaks[2]


# -- trace merging --------------------------------------------------------------------


def test_merge_rank_traces_single_input_is_identity():
    session = run_training_session(_config(1))
    assert merge_rank_traces([session.trace]) is session.trace


def test_merge_rank_traces_unions_iteration_marks():
    session = run_training_session(_config(2))
    marks = session.trace.iteration_marks
    assert [mark.index for mark in marks] == [0, 1]
    for mark in marks:
        assert mark.end_ns is not None and mark.end_ns > mark.start_ns


# -- rank-aware ZeRO-Offload ----------------------------------------------------------


def test_policies_report_per_device_numbers_on_multi_rank_scenarios():
    """The sweep evaluates every policy on the rank-0 slice, so savings stay
    comparable with the per-replica peak instead of counting each replicated
    block once per rank."""
    from repro.experiments.sweep import Scenario, run_scenario

    for n in (1, 2):
        scenario = Scenario(config=_config(n, batch_size=64),
                            swap_policy="zero_offload")
        result = run_scenario(scenario)
        swap = result.swap
        # Offloaded optimizer state/gradients exist once per device; their
        # per-device savings must not exceed the per-replica peak.
        assert 0 < swap["savings_bytes"] <= result.peak_allocated_bytes
        assert 0.0 < swap["savings_fraction"] <= 1.0
    # The replicated model means the per-device offloadable bytes match
    # across cluster sizes (same parameters on every rank).
    flat = run_scenario(Scenario(config=_config(1, batch_size=64),
                                 swap_policy="zero_offload")).swap
    sharded = run_scenario(Scenario(config=_config(2, batch_size=64),
                                    swap_policy="zero_offload")).swap
    assert flat["swapped_bytes"] == sharded["swapped_bytes"]
    assert sharded["overhead_ns"] < flat["overhead_ns"]


def test_zero_offload_partitions_transfers_across_ranks():
    single = run_training_session(_config(1, batch_size=64))
    double = run_training_session(_config(2, batch_size=64))
    flat = zero_offload_style_policy(single.trace)
    sharded = zero_offload_style_policy(double.trace)
    # Each rank still frees its full local optimizer-state/gradient bytes...
    assert sharded.swapped_bytes == flat.swapped_bytes
    assert sharded.world_size == 2
    assert sharded.partition_bytes == -(-flat.swapped_bytes // 2)
    # ...but only moves its 1/N partition per iteration.
    assert sharded.overhead_ns < flat.overhead_ns
    assert sharded.summary()["world_size"] == 2
    assert "world_size" not in flat.summary()
