"""Tests for the training loop."""

import numpy as np
import pytest

from repro.core.profiler import MemoryProfiler
from repro.data import DataLoader, HostLatencyModel, TwoClusterDataset
from repro.device import Device, small_test_device, titan_x_pascal
from repro.errors import ConfigurationError
from repro.models import MLP, LeNet5
from repro.nn import SGD, CrossEntropyLoss
from repro.train import Trainer


def make_trainer(device, model, batch_size=32, recorder=None):
    if isinstance(model, MLP):
        dataset = TwoClusterDataset(input_dim=model.input_dim, seed=0, separation=4.0)
    else:
        from repro.data import SyntheticMNIST
        dataset = SyntheticMNIST(seed=0)
    loader = DataLoader(dataset, batch_size=batch_size,
                        host_latency=HostLatencyModel(per_batch_ns=100_000,
                                                      per_sample_ns=1_000,
                                                      per_byte_ns=0.05))
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    loss_fn = CrossEntropyLoss(device)
    return Trainer(model, loader, optimizer, loss_fn, device, recorder=recorder)


def test_training_reduces_loss_on_separable_data(test_device):
    model = MLP(test_device, hidden_dim=32, rng=np.random.default_rng(0))
    trainer = make_trainer(test_device, model, batch_size=64)
    stats = trainer.train(10)
    losses = [s.loss for s in stats]
    assert losses[0] is not None
    assert np.mean(losses[-3:]) < np.mean(losses[:3])


def test_iteration_stats_fields(test_device):
    model = MLP(test_device, hidden_dim=16, rng=np.random.default_rng(0))
    trainer = make_trainer(test_device, model)
    stats = trainer.train_iteration(0)
    assert stats.index == 0
    assert stats.duration_ns > 0
    assert stats.peak_allocated_bytes > 0
    assert stats.allocated_bytes_end >= 0
    assert trainer.mean_iteration_time_ns() == stats.duration_ns


def test_no_memory_leak_across_iterations(test_device):
    """Allocated bytes at the end of every steady-state iteration are equal."""
    model = MLP(test_device, hidden_dim=32, rng=np.random.default_rng(0))
    trainer = make_trainer(test_device, model)
    stats = trainer.train(5)
    steady = [s.allocated_bytes_end for s in stats[1:]]
    assert len(set(steady)) == 1


def test_virtual_mode_training_reports_none_loss():
    device = Device(titan_x_pascal(), execution_mode="virtual")
    model = MLP(device, hidden_dim=64, rng=np.random.default_rng(0))
    trainer = make_trainer(device, model)
    stats = trainer.train(2)
    assert all(s.loss is None for s in stats)


def test_trainer_feeds_recorder_iteration_marks(test_device):
    profiler = MemoryProfiler(test_device)
    profiler.start()
    model = MLP(test_device, hidden_dim=16, rng=np.random.default_rng(0))
    trainer = make_trainer(test_device, model, recorder=profiler)
    trainer.train(3)
    trace = profiler.stop()
    assert trace.iterations() == [0, 1, 2]
    assert all(mark.end_ns is not None for mark in trace.iteration_marks)


def test_trainer_rejects_nonpositive_iterations(test_device):
    model = MLP(test_device, hidden_dim=16, rng=np.random.default_rng(0))
    trainer = make_trainer(test_device, model)
    with pytest.raises(ConfigurationError):
        trainer.train(0)


def test_training_convnet_on_images(test_device):
    model = LeNet5(test_device, rng=np.random.default_rng(0))
    trainer = make_trainer(test_device, model, batch_size=8)
    stats = trainer.train(2)
    assert all(s.loss is not None and np.isfinite(s.loss) for s in stats)


def test_losses_history_accumulates(test_device):
    model = MLP(test_device, hidden_dim=16, rng=np.random.default_rng(0))
    trainer = make_trainer(test_device, model)
    trainer.train(2)
    trainer.train(1)
    assert len(trainer.losses()) == 3
    assert trainer.history[-1].index == 2
