"""Replay-equivalence suite: template replay is bit-identical to fresh runs.

The whole value of :mod:`repro.experiments.replay` rests on one claim: a
scenario priced from a compiled :class:`TraceTemplate` produces the *exact*
:class:`~repro.experiments.sweep.ScenarioResult` a fresh symbolic simulation
would — every timestamp, every reduction, every serialized field except the
wall-clock time.  These tests pin that claim across the pricing axes the
replay engine exists to sweep (device specs, dispatch overheads,
interconnects, allreduce algorithms) and across the structural axes it must
compile separately (models, replica counts, dtypes, allocators, policies).
"""

import numpy as np
import pytest

from repro.experiments.replay import (
    ReplayEngine,
    TemplateError,
    compile_template,
    load_template,
    save_template,
    template_key,
)
from repro.experiments.sweep import Scenario, SweepGrid, SweepRunner, run_scenario
from repro.train.session import TrainingRunConfig


def make_scenario(swap_policy="none", **overrides):
    settings = dict(model="mlp", model_kwargs={"hidden_dim": 32},
                    dataset="two_cluster", batch_size=16, iterations=2,
                    execution_mode="symbolic", seed=3)
    settings.update(overrides)
    return Scenario(config=TrainingRunConfig(**settings), swap_policy=swap_policy)


def comparable(result):
    """A result's serialized form minus the only legitimately varying field."""
    data = result.to_dict()
    data.pop("wall_time_s")
    return data


def assert_replay_exact(engine, scenario):
    fresh = run_scenario(scenario)
    replayed = engine.price(scenario, scenario.resolve_bandwidths())
    assert replayed is not None, f"engine declined {scenario.describe()}"
    assert comparable(replayed) == comparable(fresh)


# -- the equivalence matrix -----------------------------------------------------------

CONV = dict(model="alexnet", model_kwargs={"input_size": 32, "num_classes": 10},
            dataset="cifar10", batch_size=4)

EXACTNESS_CASES = [
    # label, scenario overrides
    ("mlp-baseline", {}),
    ("mlp-fp16", {"dtype": "float16"}),
    ("mlp-bump", {"allocator": "bump"}),
    ("mlp-best-fit", {"allocator": "best_fit"}),
    ("mlp-adam", {"optimizer": "adam", "iterations": 3}),
    ("mlp-2dev", {"n_devices": 2}),
    ("mlp-4dev", {"n_devices": 4, "batch_size": 32}),
    ("alexnet", dict(CONV)),
    ("alexnet-2dev", dict(CONV, n_devices=2)),
    ("alexnet-v100", dict(CONV, device_spec="v100_sxm2_16gb")),
    ("mlp-dispatch", {"host_dispatch_overhead_ns": 9_000}),
    ("mlp-2dev-nvlink", {"n_devices": 2, "interconnect": "nvlink2"}),
    ("mlp-2dev-ethernet", {"n_devices": 2, "interconnect": "ethernet_25g"}),
    ("mlp-2dev-naive", {"n_devices": 2, "allreduce_algorithm": "naive"}),
]


@pytest.mark.parametrize("label,overrides",
                         EXACTNESS_CASES, ids=[c[0] for c in EXACTNESS_CASES])
def test_replayed_result_is_bit_identical_to_fresh_symbolic(label, overrides):
    engine = ReplayEngine()
    assert_replay_exact(engine, make_scenario(**overrides))


@pytest.mark.parametrize("policy", ["planner", "swap_advisor", "recompute",
                                    "quantization"])
def test_replay_is_exact_under_every_swap_policy(policy):
    engine = ReplayEngine()
    assert_replay_exact(engine, make_scenario(swap_policy=policy, **CONV))


def test_zero_offload_policy_replays_exactly_on_a_cluster():
    engine = ReplayEngine()
    assert_replay_exact(engine,
                        make_scenario(swap_policy="zero_offload", n_devices=2))


# -- compile once, price many ---------------------------------------------------------


def test_one_template_prices_every_pricing_point():
    """Cross-pricing: a single compile serves all pure-timing variations."""
    engine = ReplayEngine()
    pricing_points = [
        {},
        {"device_spec": "v100_sxm2_16gb"},
        {"device_spec": "ampere_a100_40gb"},
        {"host_dispatch_overhead_ns": 2_000},
        {"device_spec": "gtx_1080_8gb", "host_dispatch_overhead_ns": 12_000},
    ]
    for overrides in pricing_points:
        assert_replay_exact(engine, make_scenario(**overrides))
    assert engine.templates_compiled == 1
    assert engine.replayed == len(pricing_points)


def test_replayed_trace_matches_fresh_trace_event_for_event():
    """Below the result level: the rebuilt trace itself is identical."""
    from repro.train.session import run_training_session

    config = TrainingRunConfig(model="mlp", model_kwargs={"hidden_dim": 32},
                               batch_size=16, iterations=2, n_devices=2,
                               execution_mode="symbolic",
                               device_spec="v100_sxm2_16gb", seed=3)
    compile_point = TrainingRunConfig(
        **{**config.__dict__, "device_spec": "titan_x_pascal"})
    engine = ReplayEngine()
    replayed = engine.template_for(compile_point).replay_trace(config)
    fresh = run_training_session(config).trace

    fresh_cols, replay_cols = fresh.columns(), replayed.columns()
    # Block/segment ids draw from a process-global counter, so two runs in
    # one process differ by a constant shift; compare first-appearance order.
    def normalized(values):
        mapping = {}
        return [mapping.setdefault(v, len(mapping)) for v in values]

    for name in ("event_id", "kind_code", "timestamp_ns", "size",
                 "category_code", "iteration", "device_rank", "address"):
        np.testing.assert_array_equal(getattr(replay_cols, name),
                                      getattr(fresh_cols, name), err_msg=name)
    assert (normalized(replay_cols.block_id.tolist())
            == normalized(fresh_cols.block_id.tolist()))
    assert replayed.event_strings() == fresh.event_strings()
    assert ([mark.to_dict() for mark in replayed.iteration_marks]
            == [mark.to_dict() for mark in fresh.iteration_marks])

    def lifetime_stream(trace):
        ids = normalized([lt.block_id for lt in trace.lifetimes])
        return [(bid, lt.address, lt.size, lt.category, lt.tag, lt.malloc_ns,
                 lt.free_ns, lt.iteration, lt.access_count, lt.device_rank)
                for bid, lt in zip(ids, trace.lifetimes)]

    assert lifetime_stream(replayed) == lifetime_stream(fresh)
    assert replayed.end_ns == fresh.end_ns


# -- sweep integration ----------------------------------------------------------------


def replay_grid(**overrides):
    settings = dict(models=("mlp",), model_kwargs={"hidden_dim": 32},
                    batch_sizes=(16,), iterations=(2,),
                    device_specs=("titan_x_pascal", "v100_sxm2_16gb"),
                    host_dispatch_overheads_ns=(None, 9_000),
                    execution_mode="replay")
    settings.update(overrides)
    return SweepGrid(**settings)


def test_sweep_replay_mode_matches_symbolic_row_for_row():
    symbolic = SweepRunner().run(replay_grid(execution_mode="symbolic"))
    replayed = SweepRunner().run(replay_grid())
    assert len(replayed.results) == len(symbolic.results) == 4
    assert replayed.replayed == 4
    assert replayed.templates_compiled == 1
    for fresh, via_replay in zip(symbolic.results, replayed.results):
        assert comparable(via_replay) == comparable(fresh)


def test_sweep_replay_smoke():
    """CI smoke: compile one template, replay a mini-grid, diff vs symbolic."""
    grid = replay_grid(host_dispatch_overheads_ns=(None,))
    symbolic = SweepRunner().run(replay_grid(execution_mode="symbolic",
                                             host_dispatch_overheads_ns=(None,)))
    replayed = SweepRunner().run(grid)
    assert replayed.templates_compiled == 1 and replayed.replayed == 2
    for fresh, via_replay in zip(symbolic.results, replayed.results):
        assert comparable(via_replay) == comparable(fresh)


def test_replay_results_share_the_symbolic_cache(tmp_path):
    """Replay writes ordinary schema-v6 entries a symbolic run can hit."""
    grid = replay_grid(host_dispatch_overheads_ns=(None,))
    first = SweepRunner(cache_dir=tmp_path).run(grid)
    assert first.cache_hits == 0 and first.replayed == 2
    rerun = SweepRunner(cache_dir=tmp_path).run(
        replay_grid(execution_mode="symbolic", host_dispatch_overheads_ns=(None,)))
    assert rerun.cache_hits == len(rerun.results) == 2
    assert (tmp_path / "templates").is_dir()


def test_swap_execution_scenarios_fall_back_to_simulation():
    """The engine declines swap-on scenarios; the sweep still completes."""
    grid = replay_grid(host_dispatch_overheads_ns=(None,),
                       device_specs=("titan_x_pascal",),
                       swaps=("off", "lru"))
    result = SweepRunner().run(grid)
    assert len(result.results) == 2
    assert result.replayed == 1  # only the swap-off scenario replayed
    modes = {row.scenario["swap"] for row in result.results}
    assert modes == {"off", "lru"}


# -- template validity and persistence ------------------------------------------------


def test_template_key_is_pricing_invariant():
    base = make_scenario().config
    assert template_key(base) == template_key(
        TrainingRunConfig(**{**base.__dict__, "device_spec": "v100_sxm2_16gb",
                             "host_dispatch_overhead_ns": 4_000,
                             "interconnect": "nvlink2", "label": "renamed"}))
    assert template_key(base) != template_key(
        TrainingRunConfig(**{**base.__dict__, "batch_size": 32}))
    assert template_key(base) != template_key(
        TrainingRunConfig(**{**base.__dict__, "allocator": "bump"}))


def test_template_key_rejects_swap_execution():
    config = TrainingRunConfig(model="mlp", swap="lru")
    with pytest.raises(TemplateError):
        template_key(config)


def test_template_key_rejects_unified_swap_execution():
    """The unified keep/swap/recompute engine mutates timing closed-loop, so
    a template can never serve it — it must refuse, not mis-price."""
    with pytest.raises(TemplateError):
        template_key(TrainingRunConfig(model="mlp", swap="unified"))
    assert compile_template(TrainingRunConfig(model="mlp",
                                              swap="unified")) is None


def test_unified_swap_scenarios_fall_back_to_simulation():
    """A replay sweep with ``--swap unified`` rows silently simulates them."""
    grid = replay_grid(host_dispatch_overheads_ns=(None,),
                       device_specs=("titan_x_pascal",),
                       swaps=("off", "unified"))
    result = SweepRunner().run(grid)
    assert len(result.results) == 2
    assert result.replayed == 1  # only the swap-off scenario replayed
    modes = {row.scenario["swap"] for row in result.results}
    assert modes == {"off", "unified"}
    unified_row = next(row for row in result.results
                       if row.scenario["swap"] == "unified")
    assert unified_row.swap_execution["policy"] == "unified"


def test_compile_declines_out_of_envelope_configs():
    assert compile_template(TrainingRunConfig(model="mlp",
                                              execution_mode="eager")) is None
    assert compile_template(TrainingRunConfig(model="mlp",
                                              swap="lru")) is None


def test_best_fit_template_is_not_served_across_capacities():
    config = make_scenario(allocator="best_fit").config
    engine = ReplayEngine()
    template = engine.template_for(config)
    assert template.valid_for(config)
    other_capacity = TrainingRunConfig(
        **{**config.__dict__, "device_memory_capacity": 1 << 34})
    assert not template.valid_for(other_capacity)


def test_template_round_trips_through_npz(tmp_path):
    scenario = make_scenario(n_devices=2)
    template = compile_template(scenario.config)
    path = tmp_path / "template.npz"
    save_template(template, path)
    loaded = load_template(path, key=template.key)
    assert loaded is not None
    fresh = run_scenario(scenario)
    replayed = loaded.replay(scenario, scenario.resolve_bandwidths(), 0.0)
    assert comparable(replayed) == comparable(fresh)


def test_corrupt_template_file_loads_as_none(tmp_path):
    path = tmp_path / "template.npz"
    path.write_bytes(b"not an npz archive")
    assert load_template(path) is None
    assert load_template(tmp_path / "missing.npz") is None


# -- batched grid repricing -----------------------------------------------------------


def batch_grid_scenarios():
    """A small pricing grid: 2 dtypes x 2 specs x 3 dispatch overheads."""
    scenarios = []
    for dtype in ("float32", "float16"):
        for spec in ("titan_x_pascal", "v100_sxm2_16gb"):
            for overhead in (None, 2_000, 9_000):
                overrides = {"dtype": dtype, "device_spec": spec}
                if overhead is not None:
                    overrides["host_dispatch_overhead_ns"] = overhead
                scenarios.append(make_scenario(**overrides))
    return scenarios


def test_price_batch_matches_scalar_replay_element_for_element():
    """The batched broadcast is bit-identical to scenario-at-a-time replay."""
    scenarios = batch_grid_scenarios()
    bandwidths = [s.resolve_bandwidths() for s in scenarios]
    scalar_engine = ReplayEngine()
    scalar = [scalar_engine.price(s, bw)
              for s, bw in zip(scenarios, bandwidths)]
    batch_engine = ReplayEngine()
    batched = batch_engine.price_batch(scenarios, bandwidths)
    assert all(result is not None for result in batched)
    for one, many in zip(scalar, batched):
        assert comparable(one) == comparable(many)


def test_price_batch_is_bit_identical_to_fresh_symbolic():
    """...and therefore to fresh simulation, the ground truth."""
    scenarios = batch_grid_scenarios()
    engine = ReplayEngine()
    batched = engine.price_batch(
        scenarios, [s.resolve_bandwidths() for s in scenarios])
    for scenario, result in zip(scenarios, batched):
        assert comparable(result) == comparable(run_scenario(scenario))
    assert engine.templates_compiled == 1  # one family serves the whole grid
    assert engine.variants_captured == 2  # one capture per dtype
    assert engine.replayed == len(scenarios)


def test_price_batch_handles_multi_rank_scenarios():
    """Sync-carrying (multi-rank) scenarios batch through the scalar fallback
    inside ``replay_batch`` and stay exact."""
    scenarios = [make_scenario(n_devices=2, dtype=dtype, **overrides)
                 for dtype in ("float32", "float16")
                 for overrides in ({}, {"interconnect": "nvlink2"},
                                   {"host_dispatch_overhead_ns": 2_000})]
    engine = ReplayEngine()
    batched = engine.price_batch(
        scenarios, [s.resolve_bandwidths() for s in scenarios])
    for scenario, result in zip(scenarios, batched):
        assert comparable(result) == comparable(run_scenario(scenario))
    assert engine.templates_compiled == 1


def test_sweep_batching_off_matches_batched_dispatch():
    """``SweepRunner(replay_batching=False)`` (the benchmark baseline) and
    the batched default produce identical rows and accounting."""
    grid = replay_grid(dtypes=("float32", "float16"))
    batched = SweepRunner().run(grid)
    scalar = SweepRunner(replay_batching=False).run(grid)
    assert len(batched.results) == len(scalar.results) == 8
    assert batched.replayed == scalar.replayed == 8
    assert batched.templates_compiled == scalar.templates_compiled == 1
    assert batched.template_variants == scalar.template_variants == 2
    for one, many in zip(scalar.results, batched.results):
        assert comparable(one) == comparable(many)


# -- dtype-generalized template families ----------------------------------------------


def test_template_key_is_dtype_invariant():
    """``dtype`` is a generalized axis: fp32 and fp16 share one family key."""
    base = make_scenario().config
    assert template_key(base) == template_key(
        TrainingRunConfig(**{**base.__dict__, "dtype": "float16"}))


@pytest.mark.parametrize("n_devices", [1, 2])
@pytest.mark.parametrize("dtype", ["float32", "float16"])
def test_dtype_variants_replay_bit_identical_to_symbolic(dtype, n_devices):
    """One family, widened per dtype, stays exact (incl. AMP master-weight
    structural deltas) across replica counts."""
    engine = ReplayEngine()
    assert_replay_exact(engine, make_scenario(dtype="float32",
                                              n_devices=n_devices))
    assert_replay_exact(engine, make_scenario(dtype=dtype,
                                              n_devices=n_devices))
    assert engine.templates_compiled == 1


def test_one_family_serves_both_dtypes_across_pricing_points():
    engine = ReplayEngine()
    for dtype in ("float32", "float16"):
        for overrides in ({}, {"device_spec": "v100_sxm2_16gb"},
                          {"host_dispatch_overhead_ns": 2_000}):
            assert_replay_exact(engine, make_scenario(dtype=dtype, **overrides))
    assert engine.templates_compiled == 1
    assert engine.variants_captured == 2
    assert engine.replayed == 6


def test_family_round_trips_with_dtype_variants(tmp_path):
    from repro.experiments.replay import TemplateFamily, load_family, save_family

    fp32 = make_scenario(dtype="float32")
    fp16 = make_scenario(dtype="float16")
    family = TemplateFamily(template_key(fp32.config))
    family.capture(fp32.config)
    family.capture(fp16.config)
    path = tmp_path / "family.npz"
    save_family(family, path)
    loaded = load_family(path, key=family.key)
    assert loaded is not None
    assert loaded.captured_dtypes() == ["float16", "float32"]
    for scenario in (fp32, fp16):
        variant = loaded.get(scenario.config.dtype)
        replayed = variant.replay(scenario, scenario.resolve_bandwidths(), 0.0)
        assert comparable(replayed) == comparable(run_scenario(scenario))


def test_load_template_selects_the_requested_dtype_variant(tmp_path):
    from repro.experiments.replay import TemplateFamily, save_family

    fp32 = make_scenario(dtype="float32").config
    fp16 = make_scenario(dtype="float16").config
    family = TemplateFamily(template_key(fp32))
    family.capture(fp32)
    family.capture(fp16)
    path = tmp_path / "family.npz"
    save_family(family, path)
    assert load_template(path, dtype="float16").dtype == "float16"
    assert load_template(path, dtype="float32").dtype == "float32"
    assert load_template(path, dtype="bfloat16") is None


def test_failed_dtype_capture_is_memoized_not_retried():
    from repro.experiments.replay import TemplateFamily

    config = make_scenario().config
    family = TemplateFamily(template_key(config))
    broken = TrainingRunConfig(**{**config.__dict__, "swap": "lru"})
    with pytest.raises(TemplateError):
        family.capture(broken)
    assert family.variants[broken.dtype] is None  # memoized failure


# -- fallback-reason accounting -------------------------------------------------------


def test_engine_tallies_fallback_reasons():
    engine = ReplayEngine()
    swap_on = make_scenario(swap="lru")
    eager = make_scenario(execution_mode="eager")
    assert engine.price(swap_on, swap_on.resolve_bandwidths()) is None
    assert engine.price(eager, eager.resolve_bandwidths()) is None
    assert engine.fallback_reasons == {"swap_execution": 1, "eager_mode": 1}


def test_sweep_surfaces_replay_fallback_reasons():
    grid = replay_grid(host_dispatch_overheads_ns=(None,),
                       device_specs=("titan_x_pascal",),
                       swaps=("off", "lru"))
    result = SweepRunner().run(grid)
    assert result.replayed == 1
    assert result.replay_fallbacks == {"swap_execution": 1}
    assert result.template_variants == 1


# -- atomic persistence and the template store ----------------------------------------


def test_save_family_leaves_no_temp_files(tmp_path):
    template = compile_template(make_scenario().config)
    path = tmp_path / "template.npz"
    save_template(template, path)
    assert [p.name for p in tmp_path.iterdir()] == ["template.npz"]


def test_engine_persists_families_through_the_store(tmp_path):
    engine = ReplayEngine(template_dir=tmp_path)
    assert_replay_exact(engine, make_scenario())
    assert_replay_exact(engine, make_scenario(dtype="float16"))
    assert engine.templates_compiled == 1
    assert (tmp_path / "index.json").is_file()

    # A later process loads the family from the store: no fresh compile, and
    # pricing stays exact for both dtypes at a new pricing point.
    second = ReplayEngine(template_dir=tmp_path)
    assert_replay_exact(second,
                        make_scenario(device_spec="v100_sxm2_16gb"))
    assert_replay_exact(second,
                        make_scenario(dtype="float16",
                                      device_spec="v100_sxm2_16gb"))
    assert second.templates_compiled == 0
    assert second.variants_captured == 0
