"""Numerical tests for the dense/elementwise/loss/optimizer kernels."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import functional as F
from repro.tensor import from_numpy, randn, zeros
from repro.tensor.shape_ops import concat_channels, split_channels


def tensors_close(tensor, expected, rtol=1e-5, atol=1e-6):
    np.testing.assert_allclose(tensor.numpy(), expected, rtol=rtol, atol=atol)


# -- dense ops ---------------------------------------------------------------------------


def test_matmul_matches_numpy(test_device, rng):
    a = from_numpy(test_device, rng.standard_normal((5, 7)).astype(np.float32))
    b = from_numpy(test_device, rng.standard_normal((7, 3)).astype(np.float32))
    out = F.matmul(a, b)
    tensors_close(out, a.numpy() @ b.numpy())


def test_matmul_shape_mismatch_raises(test_device):
    a = zeros(test_device, (2, 3))
    b = zeros(test_device, (4, 5))
    with pytest.raises(ShapeError):
        F.matmul(a, b)


def test_linear_forward_matches_numpy(test_device, rng):
    x = from_numpy(test_device, rng.standard_normal((4, 6)).astype(np.float32))
    w = from_numpy(test_device, rng.standard_normal((6, 2)).astype(np.float32))
    b = from_numpy(test_device, rng.standard_normal(2).astype(np.float32))
    out = F.linear_forward(x, w, b)
    tensors_close(out, x.numpy() @ w.numpy() + b.numpy())


def test_linear_backward_matches_numerical_gradient(test_device, rng):
    x_np = rng.standard_normal((3, 4)).astype(np.float32)
    w_np = rng.standard_normal((4, 2)).astype(np.float32)
    grad_np = rng.standard_normal((3, 2)).astype(np.float32)
    x = from_numpy(test_device, x_np)
    w = from_numpy(test_device, w_np)
    grad_out = from_numpy(test_device, grad_np)
    grad_w = zeros(test_device, (4, 2))
    grad_b = zeros(test_device, (2,))
    F.linear_backward_params(x, grad_out, grad_w, grad_b)
    grad_x = F.linear_backward_input(grad_out, w)
    tensors_close(grad_w, x_np.T @ grad_np)
    tensors_close(grad_b, grad_np.sum(axis=0))
    tensors_close(grad_x, grad_np @ w_np.T)


def test_parameter_gradients_accumulate(test_device, rng):
    x = from_numpy(test_device, rng.standard_normal((3, 4)).astype(np.float32))
    grad_out = from_numpy(test_device, rng.standard_normal((3, 2)).astype(np.float32))
    grad_w = zeros(test_device, (4, 2))
    F.linear_backward_params(x, grad_out, grad_w, None)
    F.linear_backward_params(x, grad_out, grad_w, None)
    tensors_close(grad_w, 2 * (x.numpy().T @ grad_out.numpy()), rtol=1e-4)


# -- elementwise -------------------------------------------------------------------------


def test_add_and_accumulate(test_device, rng):
    a = from_numpy(test_device, rng.standard_normal((3, 3)).astype(np.float32))
    b = from_numpy(test_device, rng.standard_normal((3, 3)).astype(np.float32))
    tensors_close(F.add(a, b), a.numpy() + b.numpy())
    expected = a.numpy() + b.numpy()
    F.accumulate_(a, b)
    tensors_close(a, expected)
    with pytest.raises(ShapeError):
        F.add(a, zeros(test_device, (2, 2)))


def test_scale_and_zero(test_device, rng):
    a = from_numpy(test_device, rng.standard_normal((4,)).astype(np.float32))
    tensors_close(F.scale(a, 2.5), a.numpy() * 2.5)
    F.zero_(a)
    tensors_close(a, np.zeros(4))


def test_relu_forward_and_backward(test_device):
    x = from_numpy(test_device, np.array([[-1.0, 2.0], [0.5, -3.0]], dtype=np.float32))
    y = F.relu_forward(x)
    tensors_close(y, [[0.0, 2.0], [0.5, 0.0]])
    grad = from_numpy(test_device, np.ones((2, 2), dtype=np.float32))
    grad_x = F.relu_backward(grad, y)
    tensors_close(grad_x, [[0.0, 1.0], [1.0, 0.0]])


def test_sigmoid_and_tanh(test_device, rng):
    x_np = rng.standard_normal((5,)).astype(np.float32)
    x = from_numpy(test_device, x_np)
    sig = F.sigmoid_forward(x)
    tensors_close(sig, 1 / (1 + np.exp(-x_np)), rtol=1e-4)
    tan = F.tanh_forward(x)
    tensors_close(tan, np.tanh(x_np), rtol=1e-4)
    grad = from_numpy(test_device, np.ones(5, dtype=np.float32))
    tensors_close(F.sigmoid_backward(grad, sig), sig.numpy() * (1 - sig.numpy()), rtol=1e-4)
    tensors_close(F.tanh_backward(grad, tan), 1 - tan.numpy() ** 2, rtol=1e-4)


def test_dropout_forward_scales_survivors(test_device, rng):
    x = from_numpy(test_device, np.ones((1000,), dtype=np.float32))
    out, mask = F.dropout_forward(x, p=0.5, rng=np.random.default_rng(0))
    values = out.numpy()
    dropped = np.sum(values == 0.0)
    assert 300 < dropped < 700               # roughly half dropped
    survivors = values[values > 0]
    np.testing.assert_allclose(survivors, 2.0, rtol=1e-5)   # inverted scaling
    grad = from_numpy(test_device, np.ones(1000, dtype=np.float32))
    grad_x = F.dropout_backward(grad, mask)
    np.testing.assert_allclose(grad_x.numpy(), mask.numpy())


def test_dropout_rejects_bad_probability(test_device):
    x = zeros(test_device, (4,))
    with pytest.raises(ShapeError):
        F.dropout_forward(x, p=1.0, rng=np.random.default_rng(0))


# -- softmax / losses ----------------------------------------------------------------------


def test_softmax_rows_sum_to_one(test_device, rng):
    x = from_numpy(test_device, rng.standard_normal((6, 10)).astype(np.float32))
    probs = F.softmax(x)
    np.testing.assert_allclose(probs.numpy().sum(axis=1), np.ones(6), rtol=1e-5)
    assert probs.numpy().min() >= 0


def test_cross_entropy_matches_reference(test_device, rng):
    logits_np = rng.standard_normal((4, 3)).astype(np.float32)
    labels_np = np.array([0, 2, 1, 2], dtype=np.int64)
    logits = from_numpy(test_device, logits_np)
    labels = from_numpy(test_device, labels_np)
    loss, probs = F.cross_entropy_forward(logits, labels)
    shifted = logits_np - logits_np.max(axis=1, keepdims=True)
    reference_probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
    expected = -np.log(reference_probs[np.arange(4), labels_np]).mean()
    assert loss.item() == pytest.approx(expected, rel=1e-4)
    grad = F.cross_entropy_backward(probs, labels)
    one_hot = np.zeros((4, 3), dtype=np.float32)
    one_hot[np.arange(4), labels_np] = 1.0
    tensors_close(grad, (reference_probs - one_hot) / 4, rtol=1e-4)


def test_cross_entropy_gradient_matches_numerical(test_device, rng):
    logits_np = rng.standard_normal((2, 3)).astype(np.float64)
    labels_np = np.array([1, 0], dtype=np.int64)

    def loss_fn(values):
        shifted = values - values.max(axis=1, keepdims=True)
        probabilities = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        return -np.log(probabilities[np.arange(2), labels_np]).mean()

    numerical = np.zeros_like(logits_np)
    epsilon = 1e-5
    for i in range(2):
        for j in range(3):
            plus, minus = logits_np.copy(), logits_np.copy()
            plus[i, j] += epsilon
            minus[i, j] -= epsilon
            numerical[i, j] = (loss_fn(plus) - loss_fn(minus)) / (2 * epsilon)

    logits = from_numpy(test_device, logits_np.astype(np.float32))
    labels = from_numpy(test_device, labels_np)
    _, probs = F.cross_entropy_forward(logits, labels)
    grad = F.cross_entropy_backward(probs, labels)
    np.testing.assert_allclose(grad.numpy(), numerical, rtol=1e-3, atol=1e-5)


def test_mse_forward_and_backward(test_device):
    prediction = from_numpy(test_device, np.array([1.0, 2.0, 3.0], dtype=np.float32))
    target = from_numpy(test_device, np.array([0.0, 2.0, 5.0], dtype=np.float32))
    loss = F.mse_forward(prediction, target)
    assert loss.item() == pytest.approx((1 + 0 + 4) / 3, rel=1e-5)
    grad = F.mse_backward(prediction, target)
    tensors_close(grad, 2 * (prediction.numpy() - target.numpy()) / 3)


# -- optimizer kernels -----------------------------------------------------------------------


def test_sgd_step_without_momentum(test_device):
    param = from_numpy(test_device, np.array([1.0, 2.0], dtype=np.float32))
    grad = from_numpy(test_device, np.array([0.5, -0.5], dtype=np.float32))
    F.sgd_step(param, grad, None, lr=0.1)
    tensors_close(param, [0.95, 2.05])


def test_sgd_step_with_momentum_and_weight_decay(test_device):
    param = from_numpy(test_device, np.array([1.0], dtype=np.float32))
    grad = from_numpy(test_device, np.array([1.0], dtype=np.float32))
    buf = from_numpy(test_device, np.array([0.0], dtype=np.float32))
    F.sgd_step(param, grad, buf, lr=0.1, momentum=0.9, weight_decay=0.1)
    # effective grad = 1 + 0.1*1 = 1.1; buf = 1.1; param = 1 - 0.11 = 0.89
    tensors_close(param, [0.89], rtol=1e-5)
    tensors_close(buf, [1.1], rtol=1e-5)


def test_adam_step_moves_towards_negative_gradient(test_device):
    param = from_numpy(test_device, np.array([1.0, -1.0], dtype=np.float32))
    grad = from_numpy(test_device, np.array([0.5, -0.5], dtype=np.float32))
    m = zeros(test_device, (2,))
    v = zeros(test_device, (2,))
    F.adam_step(param, grad, m, v, lr=0.01, beta1=0.9, beta2=0.999, eps=1e-8, step=1)
    values = param.numpy()
    assert values[0] < 1.0
    assert values[1] > -1.0


# -- shape ops --------------------------------------------------------------------------------


def test_concat_and_split_channels(test_device, rng):
    a = from_numpy(test_device, rng.standard_normal((2, 3, 4, 4)).astype(np.float32))
    b = from_numpy(test_device, rng.standard_normal((2, 5, 4, 4)).astype(np.float32))
    merged = concat_channels([a, b])
    assert merged.shape == (2, 8, 4, 4)
    np.testing.assert_allclose(merged.numpy(),
                               np.concatenate([a.numpy(), b.numpy()], axis=1))
    pieces = split_channels(merged, [3, 5])
    np.testing.assert_allclose(pieces[0].numpy(), a.numpy())
    np.testing.assert_allclose(pieces[1].numpy(), b.numpy())
    with pytest.raises(ShapeError):
        split_channels(merged, [4, 5])
    with pytest.raises(ShapeError):
        concat_channels([])
