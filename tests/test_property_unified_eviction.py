"""Randomized property tests for the unified keep/swap/recompute planner.

The :class:`~repro.swap.policies.UnifiedExecutionPolicy` makes one decision
per candidate block — keep it, swap it over the link, or drop it and replay
its producer — from warm-up observations.  These tests draw random synthetic
observation sets (sizes, idle windows, categories, learned producer times,
footprint profiles) and pin the planner's invariants on every draw:

* every observed candidate gets exactly one decision, and the mechanism
  counters in the prediction agree with the decision list;
* **recompute is only chosen when its modeled cost is at or below the
  effective swap cost** (the Eq.-1 round trip, or unbounded when the copy
  stream cannot absorb the transfer);
* with recomputation disabled the plan degenerates to the pure Eq.-1
  planner's selection under the same copy-stream budget;
* the unified predicted savings **dominate both single-mechanism plans**
  (the pure-swap planner twin and the pure-recompute twin) on the same
  profile;
* with a capacity bound, the planned peak fits the capacity at every
  sampled instant of the footprint profile — or every keepable block has
  already been flipped to swap (the runtime pressure governor owns the
  rest);
* triggers round-trip into the right directives (recompute drops vs
  prefetch-scheduled swaps).

No hypothesis dependency: draws come from seeded ``numpy`` generators so
failures reproduce exactly.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.events import MemoryCategory
from repro.core.swap import BandwidthConfig, swap_round_trip_ns
from repro.swap.executor import BlockState, WarmupObservations
from repro.swap.policies import PlannerExecutionPolicy, UnifiedExecutionPolicy
from repro.units import MIB

BANDWIDTHS = BandwidthConfig.from_paper()
ITERATION_NS = 1_000_000_000
PEAK_PHASE_NS = ITERATION_NS // 2
MIN_CANDIDATE = 32 * MIB

CATEGORIES = (MemoryCategory.ACTIVATION, MemoryCategory.PARAMETER,
              MemoryCategory.OPTIMIZER_STATE, MemoryCategory.PARAMETER_GRADIENT)


def draw_warmup(rng):
    """One random but internally consistent warm-up observation set."""
    n_blocks = int(rng.integers(3, 12))
    blocks = []
    for block_id in range(n_blocks):
        # Mostly candidate-sized blocks, with some below the size floor.
        if rng.random() < 0.2:
            size = int(rng.integers(1, MIN_CANDIDATE // MIB)) * MIB
        else:
            size = int(rng.integers(32, 257)) * MIB
        category = CATEGORIES[int(rng.integers(len(CATEGORIES)))]
        crosses = bool(rng.random() < 0.15)
        gap_ns = int(rng.integers(5_000_000, 800_000_000))
        if rng.random() < 0.75:
            # A window that covers the peak instant (with the safety margin).
            start = int(rng.integers(0, PEAK_PHASE_NS + 1))
            gap_ns = max(gap_ns, PEAK_PHASE_NS - start
                         + ITERATION_NS // 50 + 1_000_000)
        else:
            start = int(rng.integers(PEAK_PHASE_NS + 1, ITERATION_NS))
        compute_ns = None
        if category is MemoryCategory.ACTIVATION and rng.random() < 0.8:
            # Sometimes cheaper than the transfer, sometimes far dearer.
            compute_ns = int(rng.choice([100_000, 1_000_000, 2_000_000_000]))
        blocks.append(BlockState(
            block_id=block_id, size=size, category=category,
            tag=f"block{block_id}", best_gap_ns=gap_ns,
            best_gap_ordinal=int(rng.integers(1, 5)),
            best_gap_phase_ns=start, best_gap_crosses=crosses,
            compute_ns=compute_ns))
    peak = sum(state.size for state in blocks) + 256 * MIB
    # A secondary peak (e.g. the optimizer step) no idle window covers.
    secondary = int(peak * rng.uniform(0.3, 1.0))
    live_series = [(0, 256 * MIB), (PEAK_PHASE_NS, peak),
                   (9 * ITERATION_NS // 10, secondary)]
    return WarmupObservations(
        blocks=blocks, by_id={state.block_id: state for state in blocks},
        peak_resident_bytes=peak, peak_phase_ns=PEAK_PHASE_NS,
        iteration_duration_ns=ITERATION_NS, live_series=live_series)


def plan(policy, warmup):
    policy.plan(warmup, BANDWIDTHS)
    return policy.predicted


def draws(n=25, seed=0):
    rng = np.random.default_rng(seed)
    return [draw_warmup(rng) for _ in range(n)]


# -- decision-shape invariants ---------------------------------------------------------


def test_every_candidate_gets_exactly_one_decision():
    for warmup in draws():
        predicted = plan(UnifiedExecutionPolicy(), warmup)
        decisions = predicted["decisions"]
        assert len(decisions) == predicted["num_candidates"]
        assert len({d["block_id"] for d in decisions}) == len(decisions)
        counted = {"swap": 0, "recompute": 0, "keep": 0}
        for decision in decisions:
            counted[decision["mechanism"]] += 1
        assert counted["swap"] == predicted["num_swapped"]
        assert counted["recompute"] == predicted["num_recomputed"]
        assert counted["keep"] == predicted["num_kept"]
        assert (predicted["num_selected"]
                == counted["swap"] + counted["recompute"])


def test_small_blocks_are_never_candidates():
    for warmup in draws(seed=1):
        predicted = plan(UnifiedExecutionPolicy(), warmup)
        decided = {d["block_id"] for d in predicted["decisions"]}
        for state in warmup.blocks:
            if state.size < MIN_CANDIDATE:
                assert state.block_id not in decided


def test_recompute_only_chosen_when_modeled_cost_is_cheaper():
    """The tentpole decision rule: replay never beats a cheaper transfer."""
    for warmup in draws(seed=2):
        predicted = plan(UnifiedExecutionPolicy(), warmup)
        for decision in predicted["decisions"]:
            if decision["mechanism"] == "recompute":
                assert decision["recompute_cost_ns"] is not None
                assert (decision["recompute_cost_ns"]
                        <= decision["effective_swap_cost_ns"])
            elif decision["mechanism"] == "swap":
                assert math.isfinite(decision["effective_swap_cost_ns"])
                if decision["recompute_cost_ns"] is not None:
                    assert (decision["recompute_cost_ns"]
                            > decision["effective_swap_cost_ns"])


def test_boundary_crossing_windows_never_recompute():
    """A block dropped at an iteration boundary has no producer inputs left
    to replay in the next iteration — it must swap or keep."""
    for warmup in draws(seed=3):
        predicted = plan(UnifiedExecutionPolicy(), warmup)
        crossing = {state.block_id for state in warmup.blocks
                    if state.best_gap_crosses}
        for decision in predicted["decisions"]:
            if decision["block_id"] in crossing:
                assert decision["mechanism"] != "recompute"
                assert decision["recompute_cost_ns"] is None


def test_non_activations_never_recompute():
    for warmup in draws(seed=4):
        predicted = plan(UnifiedExecutionPolicy(), warmup)
        for decision in predicted["decisions"]:
            state = warmup.by_id[decision["block_id"]]
            if state.category is not MemoryCategory.ACTIVATION:
                assert decision["mechanism"] != "recompute"


# -- degeneration to the single-mechanism twins ----------------------------------------


def test_disable_recompute_degenerates_to_pure_planner():
    for warmup in draws(seed=5):
        unified = UnifiedExecutionPolicy(enable_recompute=False)
        unified_predicted = plan(unified, warmup)
        planner = PlannerExecutionPolicy(min_candidate_bytes=MIN_CANDIDATE)
        planner_predicted = plan(planner, warmup)
        swapped = {d["block_id"] for d in unified_predicted["decisions"]
                   if d["mechanism"] == "swap"}
        assert len(swapped) == planner_predicted["num_selected"]
        assert unified_predicted["num_recomputed"] == 0
        assert (unified_predicted["savings_bytes"]
                == planner_predicted["savings_bytes"])
        # the shared copy-stream budget holds when no replay frees it up
        budget = 0.8 * ITERATION_NS
        assert unified_predicted["copy_round_trip_ns"] <= budget + 1e-6


def test_disable_swap_yields_recompute_only_plan():
    for warmup in draws(seed=6):
        predicted = plan(UnifiedExecutionPolicy(enable_swap=False), warmup)
        assert predicted["num_swapped"] == 0
        assert predicted["copy_round_trip_ns"] == 0
        for decision in predicted["decisions"]:
            assert decision["mechanism"] in ("recompute", "keep")
            if decision["recompute_cost_ns"] is not None:
                assert decision["mechanism"] == "recompute"


# -- dominance over both single-mechanism plans ----------------------------------------


def test_unified_savings_dominate_pure_swap_plan():
    for warmup in draws(n=40, seed=7):
        unified = plan(UnifiedExecutionPolicy(), warmup)
        planner = plan(PlannerExecutionPolicy(min_candidate_bytes=MIN_CANDIDATE),
                       warmup)
        assert unified["savings_bytes"] >= planner["savings_bytes"]


def test_unified_savings_dominate_pure_recompute_plan():
    for warmup in draws(n=40, seed=8):
        unified = plan(UnifiedExecutionPolicy(), warmup)
        recompute_only = plan(UnifiedExecutionPolicy(enable_swap=False), warmup)
        assert unified["savings_bytes"] >= recompute_only["savings_bytes"]


def test_predicted_summary_is_well_formed():
    for warmup in draws(seed=9):
        predicted = plan(UnifiedExecutionPolicy(), warmup)
        assert predicted["peak_bytes_after"] >= 0
        assert 0.0 <= predicted["savings_fraction"] <= 1.0
        assert predicted["total_overhead_ns"] >= 0
        assert predicted["recompute_overhead_ns"] >= 0
        assert (predicted["peak_bytes_before"] - predicted["peak_bytes_after"]
                == predicted["savings_bytes"])


# -- capacity-bounded planning ---------------------------------------------------------


def predicted_peak_at_instant(phase, live, decisions, warmup):
    """Replay the planner's own absence rule at one profile instant."""
    margin = ITERATION_NS // 50
    absent = 0
    for decision in decisions:
        if decision["mechanism"] == "keep":
            continue
        state = warmup.by_id[decision["block_id"]]
        start = state.best_gap_phase_ns
        end = start + state.best_gap_ns
        if (start <= phase < end - margin) or (phase < end - ITERATION_NS - margin):
            absent += state.size
    return live - absent


def test_capacity_plan_fits_at_every_sampled_instant_or_flips_everything():
    for index, warmup in enumerate(draws(n=40, seed=10)):
        capacity = int(warmup.peak_resident_bytes
                       * np.random.default_rng(index).uniform(0.4, 0.95))
        policy = UnifiedExecutionPolicy(capacity_bytes=capacity)
        predicted = plan(policy, warmup)
        assert predicted["capacity_bytes"] == capacity
        if predicted["num_kept"] > 0:
            assert predicted["peak_bytes_after"] <= capacity
            for phase, live in warmup.live_series:
                assert (predicted_peak_at_instant(
                    phase, live, predicted["decisions"], warmup) <= capacity)
        # num_kept == 0 means every candidate was flipped — the remainder is
        # the runtime pressure governor's job, not the planner's.


def test_capacity_flips_charge_stall_overhead():
    """A forced flip of a keep (whose window cannot hide the transfer for
    free) must surface in the predicted overhead, not be silent.

    Two parameter blocks whose idle windows are far shorter than their
    Eq.-1 round trips: the unbounded plan keeps both, a capacity below the
    peak flips them to swap and must charge the uncovered transfer time.
    """
    blocks = [
        BlockState(block_id=i, size=128 * MIB,
                   category=MemoryCategory.PARAMETER, tag=f"weight{i}",
                   best_gap_ns=10_000_000, best_gap_ordinal=1,
                   best_gap_phase_ns=PEAK_PHASE_NS - 1_000_000,
                   best_gap_crosses=False)
        for i in range(2)
    ]
    # Long enough windows to cover the peak, still far below the round trip.
    for state in blocks:
        state.best_gap_ns = ITERATION_NS // 50 + 10_000_000
    peak = sum(state.size for state in blocks) + 64 * MIB
    warmup = WarmupObservations(
        blocks=blocks, by_id={state.block_id: state for state in blocks},
        peak_resident_bytes=peak, peak_phase_ns=PEAK_PHASE_NS,
        iteration_duration_ns=ITERATION_NS,
        live_series=[(PEAK_PHASE_NS, peak)])
    round_trip = swap_round_trip_ns(128 * MIB, BANDWIDTHS)
    assert round_trip > blocks[0].best_gap_ns    # Eq.-1 infeasible by design

    loose = plan(UnifiedExecutionPolicy(), warmup)
    assert loose["num_kept"] == 2 and loose["num_swapped"] == 0
    assert loose["total_overhead_ns"] == 0

    capacity = peak - 100 * MIB
    tight = plan(UnifiedExecutionPolicy(capacity_bytes=capacity), warmup)
    assert tight["num_swapped"] > 0
    assert tight["peak_bytes_after"] <= capacity or tight["num_kept"] == 0
    assert tight["total_overhead_ns"] > 0


def test_uncapped_plan_reports_no_capacity():
    for warmup in draws(n=5, seed=12):
        predicted = plan(UnifiedExecutionPolicy(), warmup)
        assert predicted["capacity_bytes"] is None


# -- trigger / directive round trip ----------------------------------------------------


def test_recompute_decisions_fire_recompute_directives():
    for warmup in draws(seed=13):
        policy = UnifiedExecutionPolicy()
        predicted = plan(policy, warmup)
        for decision in predicted["decisions"]:
            state = warmup.by_id[decision["block_id"]]
            if state.best_gap_crosses:
                continue
            state.iter_access_count = state.best_gap_ordinal
            directive = policy.directive_after_access(state)
            if decision["mechanism"] == "keep":
                assert directive is None
            elif decision["mechanism"] == "recompute":
                assert directive is not None and directive.recompute
            else:
                assert directive is not None and not directive.recompute
                assert directive.prefetch_gap_ns == state.best_gap_ns


def test_boundary_decisions_fire_at_iteration_end():
    for warmup in draws(seed=14):
        policy = UnifiedExecutionPolicy()
        predicted = plan(policy, warmup)
        selected_crossing = {
            d["block_id"] for d in predicted["decisions"]
            if d["mechanism"] != "keep"
            and warmup.by_id[d["block_id"]].best_gap_crosses}
        directives = policy.directives_at_iteration_end(warmup.blocks)
        assert {d.block_id for d in directives} == selected_crossing
        for directive in directives:
            assert not directive.recompute   # crossing windows never replay


def test_planning_is_deterministic():
    for warmup in draws(n=5, seed=15):
        first = plan(UnifiedExecutionPolicy(), warmup)
        second = plan(UnifiedExecutionPolicy(), warmup)
        assert first == second


def test_empty_observation_set_plans_nothing():
    warmup = WarmupObservations(blocks=[], by_id={}, peak_resident_bytes=0,
                                peak_phase_ns=None, iteration_duration_ns=0,
                                live_series=[])
    policy = UnifiedExecutionPolicy()
    predicted = plan(policy, warmup)
    assert predicted["num_selected"] == 0
    assert predicted["savings_bytes"] == 0
    assert predicted["decisions"] == []
    assert policy.directives_at_iteration_end([]) == []
