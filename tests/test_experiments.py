"""Tests for the per-figure experiment entry points (scaled-down configurations)."""

import pytest

from repro.experiments import (
    paper_mlp_config,
    run_allocator_ablation,
    run_eq1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_swap_planner,
    run_timing_ablation,
    small_mlp_config,
)
from repro.units import GB, KB


@pytest.fixture(scope="module")
def small_paper_session():
    """One shared reduced paper-MLP run used by the figure experiments."""
    from repro.train.session import run_training_session

    return run_training_session(paper_mlp_config(batch_size=2048, iterations=4,
                                                 execution_mode="virtual"))


def test_eq1_reproduces_paper_numbers():
    result = run_eq1()
    summary = result.summary()
    assert summary["swap_bound_at_25us_kb"] == pytest.approx(79.37, abs=0.01)
    assert summary["swap_bound_at_0.8s_gb"] == pytest.approx(2.54, abs=0.01)
    assert summary["measured_h2d_gbps"] == pytest.approx(6.3, rel=0.05)
    assert summary["measured_d2h_gbps"] == pytest.approx(6.4, rel=0.05)
    # The sweep is monotone in the ATI.
    bounds = [bound for _, bound in result.sweep]
    assert all(b2 >= b1 for b1, b2 in zip(bounds, bounds[1:]))


def test_eq1_with_measured_bandwidths_is_slightly_lower():
    paper = run_eq1(use_measured_bandwidths=False)
    measured = run_eq1(use_measured_bandwidths=True)
    assert measured.paper_points[25.0] <= paper.paper_points[25.0]


def test_fig2_detects_iterative_patterns(small_paper_session):
    result = run_fig2(config=None, max_iterations=4)
    # Reuse the shared session path through run_fig2's own config is heavy; instead
    # check the cheap eager config.
    assert result.patterns.is_iterative or result.patterns.mean_jaccard_similarity > 0.9


def test_fig2_summary_fields_on_small_config():
    result = run_fig2(config=small_mlp_config(batch_size=16, iterations=4, hidden_dim=32))
    summary = result.summary()
    assert summary["num_iterations"] == 4
    assert summary["is_iterative"]
    assert summary["num_rectangles"] > 0
    assert len(result.iteration_durations_s()) == 4


def test_fig3_distribution_is_concentrated(small_paper_session):
    result = run_fig3(session=small_paper_session)
    assert result.summary_stats.count > 100
    assert result.cdf.values.size == result.summary_stats.count
    assert 0.0 < result.fraction_below_25us < 1.0
    assert set(result.violins) <= {"read", "write"}
    summary = result.summary()
    assert summary["p90_us"] >= summary["ati"]["p50_us"]


def test_fig4_finds_large_long_idle_outliers(small_paper_session):
    from repro.units import MIB, s_to_ns
    from repro.core.outliers import find_outliers

    result = run_fig4(session=small_paper_session)
    assert len(result.pairwise) == len(result.intervals)
    # With the reduced batch the paper's absolute thresholds are too strict, so
    # verify the scaled-down equivalent: blocks > 64 MiB idle for > 0.1 s exist.
    scaled = find_outliers(result.intervals, ati_threshold_ns=s_to_ns(0.1),
                           size_threshold_bytes=64 * MIB)
    assert scaled.count > 0
    assert result.top_candidates
    assert result.summary()["num_behaviors"] > 0


def test_fig5_parameters_are_minor_for_typical_dnns():
    workloads = (
        ("lenet5", "lenet5", "mnist", 32, 28),
        ("resnet18-cifar", "resnet18", "cifar100", 32, 32),
    )
    result = run_fig5(workloads=workloads)
    assert len(result.breakdowns) == 2
    assert result.parameters_always_minor()
    assert result.intermediates_dominant_count() == 2
    rows = result.rows()
    assert all(set(("input data", "parameters", "intermediate results")) <= set(row)
               for row in rows)


def test_fig6_intermediates_grow_with_batch_size():
    result = run_fig6(batch_sizes=(32, 128, 512), input_size=32, num_classes=100)
    assert result.intermediates_grow_with_batch()
    assert result.parameters_shrink_with_batch()
    rows = result.rows()
    assert rows[0]["batch_size"] == 32
    assert rows[-1]["total_bytes"] > rows[0]["total_bytes"]


def test_fig7_intermediates_dominate_across_depths():
    result = run_fig7(depths=("resnet18", "resnet50"), batch_size=8)
    assert result.intermediates_dominant_everywhere()
    assert result.parameters_always_minor()
    assert result.total_footprint_grows_with_depth()
    assert len(result.rows()) == 2


def test_swap_planner_beats_zero_overhead_baselines(small_paper_session):
    result = run_swap_planner(session=small_paper_session)
    summary = result.summary()
    assert summary["planner"]["savings_bytes"] >= 0
    assert summary["planner"]["total_overhead_ns"] == 0.0
    # The ZeRO-style baseline offloads small state on this workload, so the
    # ATI-aware planner should save at least as much.
    assert summary["planner"]["savings_bytes"] >= summary["zero_offload_style"]["savings_bytes"]


def test_allocator_ablation_differentiates_policies():
    rows = run_allocator_ablation(batch_size=256, iterations=3, hidden_dim=512)
    by_name = {row.allocator: row for row in rows}
    assert set(by_name) == {"caching", "best_fit", "bump"}
    assert by_name["caching"].cache_hit_rate > 0.5
    assert by_name["bump"].cache_hit_rate == 0.0
    # The bump allocator never reuses blocks, so it observes more distinct blocks.
    assert by_name["bump"].num_blocks > by_name["caching"].num_blocks
    assert by_name["bump"].segment_allocs > by_name["caching"].segment_allocs


def test_timing_ablation_p50_grows_with_dispatch_overhead():
    rows = run_timing_ablation(dispatch_overheads_us=(1.0, 20.0), batch_size=128,
                               iterations=3, hidden_dim=256)
    assert rows[0].p50_us < rows[1].p50_us
    assert rows[0].to_dict()["host_dispatch_overhead_us"] == 1.0
