"""Tests for the occupation breakdown and the outlier analysis."""

import pytest

from repro.core.ati import AccessInterval, compute_access_intervals
from repro.core.breakdown import BreakdownSeries, model_state_bytes, occupation_breakdown
from repro.core.events import MemoryCategory, MemoryEventKind, PAPER_BUCKETS
from repro.core.outliers import find_outliers, pairwise_ati_size, top_swap_candidates
from repro.units import MIB, s_to_ns

from tests.helpers import build_trace


def make_breakdown_trace():
    """Peak occupancy has 1 KiB input, 2 KiB parameters and 12 KiB activations."""
    us = 1_000
    return build_trace([
        ("malloc", 1 * us, 1, 2048, MemoryCategory.PARAMETER, -1),
        ("malloc", 2 * us, 2, 1024, MemoryCategory.INPUT, 0),
        ("malloc", 3 * us, 3, 8192, MemoryCategory.ACTIVATION, 0),
        ("malloc", 4 * us, 4, 4096, MemoryCategory.ACTIVATION_GRADIENT, 0),
        ("free", 5 * us, 4, 4096, MemoryCategory.ACTIVATION_GRADIENT, 0),
        ("free", 6 * us, 3, 8192, MemoryCategory.ACTIVATION, 0),
        ("free", 7 * us, 2, 1024, MemoryCategory.INPUT, 0),
    ], iteration_marks=[(0, 10 * us)])


def test_occupation_breakdown_at_peak():
    breakdown = occupation_breakdown(make_breakdown_trace(), label="toy")
    assert breakdown.total_bytes == 2048 + 1024 + 8192 + 4096
    assert breakdown.bucket_bytes["parameters"] == 2048
    assert breakdown.bucket_bytes["input data"] == 1024
    assert breakdown.bucket_bytes["intermediate results"] == 8192 + 4096
    assert breakdown.fraction("parameters") == pytest.approx(2048 / 15360)
    assert sum(breakdown.fractions().values()) == pytest.approx(1.0)
    assert breakdown.peak_time_ns == 4_000
    assert "toy" in breakdown.format_row()
    assert set(breakdown.to_dict()["bucket_fractions"]) == set(PAPER_BUCKETS)


def test_breakdown_category_peaks_tracked_independently():
    breakdown = occupation_breakdown(make_breakdown_trace())
    assert breakdown.category_peak_bytes["activation"] == 8192
    assert breakdown.category_peak_bytes["parameter"] == 2048


def test_breakdown_series_trends():
    series = BreakdownSeries(parameter_name="batch_size")
    for batch, activation_size in [(32, 8192), (64, 16384), (128, 32768)]:
        trace = build_trace([
            ("malloc", 1_000, 1, 4096, MemoryCategory.PARAMETER, 0),
            ("malloc", 2_000, 2, activation_size, MemoryCategory.ACTIVATION, 0),
        ])
        series.add(batch, occupation_breakdown(trace, label=f"batch{batch}"))
    assert series.is_monotonic_increasing("intermediate results")
    assert series.is_monotonic_decreasing("parameters")
    table = series.fractions_table()
    assert table[0]["batch_size"] == 32
    assert series.trend("parameters")[0] > series.trend("parameters")[-1]


def test_model_state_bytes(test_device):
    from repro.nn import SGD, Linear
    layer = Linear(test_device, 8, 8)
    optimizer = SGD(layer.parameters(), lr=0.1, momentum=0.9)
    state = model_state_bytes(layer, optimizer)
    assert state["parameters"] == layer.parameter_bytes()
    assert state["gradients"] == layer.parameter_bytes()
    assert state["optimizer_state"] == 0          # lazily allocated


def test_breakdown_on_real_session(small_mlp_session):
    breakdown = occupation_breakdown(small_mlp_session.trace, label="small-mlp")
    assert breakdown.fraction("intermediate results") > 0.5
    assert breakdown.fraction("parameters") < 0.5
    assert breakdown.total_bytes > 0


# -- outliers ---------------------------------------------------------------------------------


def make_interval(block_id, size, interval_ns, category=MemoryCategory.ACTIVATION):
    return AccessInterval(block_id=block_id, size=size, category=category, tag=f"b{block_id}",
                          interval_ns=interval_ns, start_event_id=0, end_event_id=1,
                          start_kind=MemoryEventKind.WRITE, end_kind=MemoryEventKind.READ,
                          iteration=0)


def test_find_outliers_requires_both_thresholds():
    intervals = [
        make_interval(1, 700 * MIB, s_to_ns(1.0)),    # outlier: big and slow
        make_interval(2, 700 * MIB, 10_000),          # big but fast
        make_interval(3, 1 * MIB, s_to_ns(1.0)),      # slow but small
        make_interval(4, 4096, 5_000),                # neither
    ]
    report = find_outliers(intervals)
    assert report.count == 1
    assert report.outliers[0].block_id == 1
    assert report.fraction == pytest.approx(0.25)
    assert report.largest.block_id == 1
    assert report.outlier_bytes() == 700 * MIB
    assert "block 1" in report.describe()[0]
    assert report.to_dict()["count"] == 1


def test_find_outliers_custom_thresholds():
    intervals = [make_interval(1, 10 * MIB, 200_000_000)]
    default = find_outliers(intervals)
    assert default.count == 0
    relaxed = find_outliers(intervals, ati_threshold_ns=100_000_000,
                            size_threshold_bytes=5 * MIB)
    assert relaxed.count == 1


def test_outlier_report_empty():
    report = find_outliers([])
    assert report.count == 0
    assert report.largest is None
    assert report.fraction == 0.0


def test_pairwise_series_preserves_order():
    intervals = [make_interval(1, 100, 10), make_interval(2, 200, 20)]
    rows = pairwise_ati_size(intervals)
    assert rows[0]["behavior_index"] == 0
    assert rows[1]["size_bytes"] == 200


def test_top_swap_candidates_ranked_by_product():
    intervals = [
        make_interval(1, 100 * MIB, 1_000_000),
        make_interval(2, 200 * MIB, 10_000_000),
        make_interval(3, 1024, 10_000_000_000),       # too small to be considered
    ]
    ranked = top_swap_candidates(intervals, top_k=2)
    assert [interval.block_id for interval in ranked] == [2, 1]


def test_outliers_present_in_paper_mlp_trace(paper_mlp_session):
    """Even at a reduced batch size the cross-iteration intervals are outliers in time."""
    intervals = compute_access_intervals(paper_mlp_session.trace)
    report = find_outliers(intervals, ati_threshold_ns=s_to_ns(0.1),
                           size_threshold_bytes=100 * MIB)
    assert report.count > 0
