PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench bench-smoke bench-suite report docs-check sweep-smoke sweep-scaling swap-smoke clean-cache

test:
	$(PYTHON) -m pytest -x -q

# Record the sweep-throughput trajectory: run the reference grid in both
# execution modes plus the swap-execution row and write BENCH_sweep.json
# (see docs/performance.md).
bench:
	$(PYTHON) tools/bench.py --grid full --modes eager,symbolic,symbolic+swap

# Fast symbolic-only benchmark with a wall-clock budget (the CI smoke job);
# includes the swap-execution throughput row.
bench-smoke:
	$(PYTHON) tools/bench.py --grid quick --modes symbolic,symbolic+swap \
		--budget-s 300 --out BENCH_smoke.json

# The qualitative paper-claim benchmark suite (pytest-based, seconds-scale).
bench-suite:
	$(PYTHON) -m pytest benchmarks/ -q

report:
	$(PYTHON) -m repro report

docs-check:
	$(PYTHON) -m repro report --check
	$(PYTHON) tools/check_docstrings.py src/repro

sweep-smoke:
	$(PYTHON) -m repro sweep --models mlp --batch-sizes 16,32 \
		--allocators caching,bump --dry-run

# Tiny closed-loop swap-execution sweep (the CI swap-smoke leg): runs the
# engine under every executable policy and prints measured vs predicted.
swap-smoke:
	$(PYTHON) -m repro sweep --models mlp --batch-sizes 512 --iterations 5 \
		--swap off,planner,swap_advisor,zero_offload,lru --no-cache

# Run the data-parallel scaling grid and regenerate the scaling report page
# (docs/figures/scaling.md + its SVGs) from the cached results.
sweep-scaling:
	$(PYTHON) -m repro sweep --models paper_mlp --batch-sizes 4096 \
		--n-devices 1,2,4,8 --interconnects pcie_gen3,nvlink2 --workers 4
	$(PYTHON) -m repro report

clean-cache:
	rm -rf .repro_cache
