PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench sweep-smoke clean-cache

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ -q

sweep-smoke:
	$(PYTHON) -m repro sweep --models mlp --batch-sizes 16,32 \
		--allocators caching,bump --dry-run

clean-cache:
	rm -rf .repro_cache
