PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench bench-smoke bench-suite report docs-check sweep-smoke sweep-scaling clean-cache

test:
	$(PYTHON) -m pytest -x -q

# Record the sweep-throughput trajectory: run the reference grid in both
# execution modes and write BENCH_sweep.json (see docs/performance.md).
bench:
	$(PYTHON) tools/bench.py --grid full

# Fast symbolic-only benchmark with a wall-clock budget (the CI smoke job).
bench-smoke:
	$(PYTHON) tools/bench.py --grid quick --modes symbolic --budget-s 300 \
		--out BENCH_smoke.json

# The qualitative paper-claim benchmark suite (pytest-based, seconds-scale).
bench-suite:
	$(PYTHON) -m pytest benchmarks/ -q

report:
	$(PYTHON) -m repro report

docs-check:
	$(PYTHON) -m repro report --check
	$(PYTHON) tools/check_docstrings.py src/repro

sweep-smoke:
	$(PYTHON) -m repro sweep --models mlp --batch-sizes 16,32 \
		--allocators caching,bump --dry-run

# Run the data-parallel scaling grid and regenerate the scaling report page
# (docs/figures/scaling.md + its SVGs) from the cached results.
sweep-scaling:
	$(PYTHON) -m repro sweep --models paper_mlp --batch-sizes 4096 \
		--n-devices 1,2,4,8 --interconnects pcie_gen3,nvlink2 --workers 4
	$(PYTHON) -m repro report

clean-cache:
	rm -rf .repro_cache
