PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench bench-smoke bench-suite report docs-check sweep-smoke sweep-scaling swap-smoke replay-smoke frontier-smoke chaos-smoke clean-cache

test:
	$(PYTHON) -m pytest -x -q

# Record the sweep-throughput trajectory: run the reference grid in every
# execution mode (eager, symbolic, template replay) plus the swap-execution
# row and write BENCH_sweep.json (see docs/performance.md).
bench:
	$(PYTHON) tools/bench.py --grid full --modes eager,symbolic,replay,replay-batch,symbolic+swap

# Fast eager-free benchmark with a wall-clock budget (the CI smoke job);
# includes the batched template-replay and swap-execution throughput rows
# and gates on the replay speedup staying >= 6x over symbolic.
bench-smoke:
	$(PYTHON) tools/bench.py --grid quick --modes symbolic,replay-batch,symbolic+swap \
		--budget-s 300 --assert-replay-speedup 6.0 --out BENCH_smoke.json

# The qualitative paper-claim benchmark suite (pytest-based, seconds-scale).
bench-suite:
	$(PYTHON) -m pytest benchmarks/ -q

report:
	$(PYTHON) -m repro report

docs-check:
	$(PYTHON) -m repro report --check
	$(PYTHON) tools/check_docstrings.py src/repro

sweep-smoke:
	$(PYTHON) -m repro sweep --models mlp --batch-sizes 16,32 \
		--allocators caching,bump --dry-run

# Tiny closed-loop swap-execution sweep (the CI swap-smoke leg): runs the
# engine under every executable policy and prints measured vs predicted.
swap-smoke:
	$(PYTHON) -m repro sweep --models mlp --batch-sizes 512 --iterations 5 \
		--swap off,planner,swap_advisor,zero_offload,lru --no-cache

# Feasibility-frontier smoke (the CI frontier-smoke leg): the unified
# keep/swap/recompute policy plus the capacity governor on a tiny capacity
# ladder — one capacity forces eviction pressure, the unbounded point pins
# the policy's plain savings.
frontier-smoke:
	$(PYTHON) -m pytest tests/test_capacity_pressure.py \
		tests/test_property_unified_eviction.py -q
	$(PYTHON) -m repro sweep --models mlp --batch-sizes 512 --iterations 5 \
		--hidden-dim 2048 --num-layers 4 --swap unified \
		--device-memory-gib 0.0625,0.25 --no-cache

# Template-replay smoke (the CI replay-smoke leg): the equivalence suite
# plus a small --execution replay sweep that compiles one template and
# re-prices it across device specs.
replay-smoke:
	$(PYTHON) -m pytest tests/test_replay_equivalence.py -q
	$(PYTHON) -m repro sweep --models mlp --batch-sizes 32 --execution replay \
		--devices titan_x_pascal,v100_sxm2_16gb --no-cache

# Fault-tolerance smoke (the CI chaos-smoke leg): the chaos test suite
# (deterministic fault injection, retry/timeout, journal resume, quarantine)
# plus a seeded chaos sweep that must converge through injected faults.
chaos-smoke:
	$(PYTHON) -m pytest tests/test_chaos.py -q
	$(PYTHON) -m repro sweep --models mlp --batch-sizes 16,32 --iterations 1 \
		--chaos-seed 7 --retries 3 --backoff-s 0.01 --timeout 60 \
		--workers 2 --strict --no-cache

# Run the data-parallel scaling grid and regenerate the scaling report page
# (docs/figures/scaling.md + its SVGs) from the cached results.
sweep-scaling:
	$(PYTHON) -m repro sweep --models paper_mlp --batch-sizes 4096 \
		--n-devices 1,2,4,8 --interconnects pcie_gen3,nvlink2 --workers 4
	$(PYTHON) -m repro report

clean-cache:
	rm -rf .repro_cache
