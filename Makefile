PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench report docs-check sweep-smoke clean-cache

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ -q

report:
	$(PYTHON) -m repro report

docs-check:
	$(PYTHON) -m repro report --check
	$(PYTHON) tools/check_docstrings.py src/repro

sweep-smoke:
	$(PYTHON) -m repro sweep --models mlp --batch-sizes 16,32 \
		--allocators caching,bump --dry-run

clean-cache:
	rm -rf .repro_cache
