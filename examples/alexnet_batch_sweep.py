#!/usr/bin/env python
"""Reproduce Figure 6: AlexNet occupation breakdown versus batch size.

Sweeps the batch size of AlexNet trained on CIFAR-100-shaped synthetic data
(virtual execution: memory behavior is exact, arithmetic is skipped) and shows
the paper's trend — intermediate results gradually dominate the footprint
while the parameter share weakens.  The figure data are also exported to
CSV/JSON for external plotting.

Run with:  python examples/alexnet_batch_sweep.py [--batch-sizes 32 64 128 ...]
"""

import argparse

from repro.core.events import PAPER_BUCKETS
from repro.experiments import run_fig6
from repro.units import format_bytes
from repro.viz import export_figure_data, render_stacked_bars, render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch-sizes", type=int, nargs="+",
                        default=[32, 64, 128, 256, 512, 1024])
    parser.add_argument("--input-size", type=int, default=32,
                        help="Input resolution (32 for CIFAR, 224 for ImageNet)")
    parser.add_argument("--export-dir", default="figure_data",
                        help="Directory for the CSV/JSON figure data")
    args = parser.parse_args()

    dataset = "cifar100" if args.input_size < 64 else "imagenet"
    num_classes = 100 if dataset == "cifar100" else 1000
    print(f"AlexNet on {dataset} ({args.input_size}x{args.input_size}), "
          f"batch sizes {args.batch_sizes}\n")

    result = run_fig6(batch_sizes=args.batch_sizes, dataset=dataset,
                      input_size=args.input_size, num_classes=num_classes)

    rows = result.rows()
    print(render_stacked_bars(rows, PAPER_BUCKETS, label_key="batch_size"))
    print()
    table = [{"batch_size": row["batch_size"],
              "total": format_bytes(row["total_bytes"]),
              **{bucket: f"{100 * row[bucket]:.1f}%" for bucket in PAPER_BUCKETS}}
             for row in rows]
    print(render_table(table))

    print(f"\nintermediates grow with batch size: {result.intermediates_grow_with_batch()}")
    print(f"parameter share shrinks with batch size: {result.parameters_shrink_with_batch()}")

    paths = export_figure_data("fig6_alexnet_batch_sweep", rows, output_dir=args.export_dir)
    print(f"\nFigure data written to {paths['csv']} and {paths['json']}")


if __name__ == "__main__":
    main()
