#!/usr/bin/env python
"""Reproduce Figure 7: ResNet occupation breakdown versus network depth.

Profiles ResNet-18/34/50/101/152 training on ImageNet-sized synthetic inputs
(virtual execution) at a fixed batch size and reports the three-way breakdown
for each depth, showing intermediate results dominating at every depth and
the absolute footprint growing with the number of residual layer blocks.

Run with:  python examples/resnet_depth_sweep.py [--batch-size 16]
"""

import argparse

from repro.core.events import PAPER_BUCKETS
from repro.experiments import DEFAULT_FIG7_DEPTHS, run_fig7
from repro.units import GIB, format_bytes
from repro.viz import export_figure_data, render_stacked_bars, render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--depths", nargs="+", default=list(DEFAULT_FIG7_DEPTHS),
                        choices=list(DEFAULT_FIG7_DEPTHS))
    parser.add_argument("--export-dir", default="figure_data")
    args = parser.parse_args()

    print(f"ResNet depth sweep on ImageNet-sized inputs, batch size {args.batch_size}\n")
    result = run_fig7(depths=args.depths, batch_size=args.batch_size)

    rows = result.rows()
    print(render_stacked_bars(rows, PAPER_BUCKETS, label_key="depth"))
    print()
    table = [{"depth": row["depth"],
              "total": format_bytes(row["total_bytes"]),
              **{bucket: f"{100 * row[bucket]:.1f}%" for bucket in PAPER_BUCKETS}}
             for row in rows]
    print(render_table(table))

    print(f"\nintermediates dominant at every depth: "
          f"{result.intermediates_dominant_everywhere()}")
    print(f"parameters always a minor fraction:     {result.parameters_always_minor()}")
    print(f"footprint grows with depth:             "
          f"{result.total_footprint_grows_with_depth()}")
    deepest_label, deepest = result.series.entries[-1]
    print(f"\n{deepest_label} needs {deepest.total_bytes / GIB:.2f} GiB at batch "
          f"{args.batch_size} — scale the batch up and it exceeds the Titan X's 12 GiB, "
          f"which is the memory pressure the paper sets out to characterize.")

    paths = export_figure_data("fig7_resnet_depth_sweep", rows, output_dir=args.export_dir)
    print(f"\nFigure data written to {paths['csv']} and {paths['json']}")


if __name__ == "__main__":
    main()
