#!/usr/bin/env python
"""Reproduce the paper's MLP case study (Figures 2, 3 and 4 + Equation 1).

Runs the Figure-1 MLP (2 -> 12288 -> 2) for five iterations on the simulated
Titan X (Pascal), then prints:

* the Gantt chart of block lifetimes (Figure 2) and the iterative-pattern
  similarity that backs the "obvious iterative patterns" observation;
* the ATI distribution as a CDF and per-behavior-kind violin statistics
  (Figure 3);
* the per-behavior ATI/size series with the high-ATI large-block outliers
  highlighted, and the Eq.-1 swap bound for the largest outlier (Figure 4).

Run with:  python examples/mlp_memory_patterns.py [--batch-size N]
"""

import argparse

from repro.experiments import paper_mlp_config, run_fig2, run_fig3, run_fig4
from repro.units import GB, KB, format_bytes, format_duration
from repro.viz import render_cdf, render_gantt, render_scatter, render_violin


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch-size", type=int, default=16384,
                        help="MLP batch size (default 16384, large enough for >600 MB blocks)")
    parser.add_argument("--iterations", type=int, default=5)
    args = parser.parse_args()

    config = paper_mlp_config(batch_size=args.batch_size, iterations=args.iterations)
    print(f"Profiling {config.describe()} ...\n")

    fig2 = run_fig2(config, max_iterations=args.iterations)
    session = fig2.session

    print("=" * 78)
    print("Figure 2 — Gantt chart of the first five iterations")
    print("=" * 78)
    print(render_gantt(fig2.gantt, width=100, max_rows=28))
    print(f"\nPer-iteration similarity: sequence={fig2.patterns.mean_sequence_similarity:.3f}, "
          f"jaccard={fig2.patterns.mean_jaccard_similarity:.3f} "
          f"-> iterative={fig2.patterns.is_iterative}")
    print(f"Iteration durations: "
          f"{[round(x, 3) for x in fig2.iteration_durations_s()]} s")

    fig3 = run_fig3(session=session)
    print("\n" + "=" * 78)
    print("Figure 3a — CDF of access-time intervals (us)")
    print("=" * 78)
    print(render_cdf(fig3.cdf, width=72, height=14))
    print("\nFigure 3b — violin statistics per behavior kind (us)")
    print(render_violin(fig3.violins))
    stats = fig3.summary_stats
    print(f"\nATI summary: p50={stats.p50_us:.1f} us, p90={stats.p90_us:.1f} us, "
          f"max={stats.max_us / 1e6:.3f} s; "
          f"{100 * fig3.fraction_below_25us:.1f}% of behaviors below 25 us")

    fig4 = run_fig4(session=session)
    print("\n" + "=" * 78)
    print("Figure 4 — per-behavior ATI and block size; outliers")
    print("=" * 78)
    points = [(index, row["ati_us"]) for index, row in enumerate(fig4.pairwise)]
    outlier_ids = {interval.end_event_id for interval in fig4.outliers.outliers}
    highlight = [(index, row["ati_us"]) for index, row in enumerate(fig4.pairwise)
                 if fig4.intervals[index].end_event_id in outlier_ids]
    print(render_scatter(points, highlight=highlight,
                         x_label="behavior index", y_label="ATI (us)"))
    print(f"\n{fig4.outliers.count} outlier behaviors "
          f"(ATI > 0.8 s and block > 600 MB) out of {len(fig4.intervals)}:")
    for line in fig4.outliers.describe()[:5]:
        print("  " + line)
    largest = fig4.outliers.largest
    if largest is not None:
        bound_gb = fig4.largest_outlier_swap_bound_gb()
        print(f"\nEq. 1 on the largest outlier: ATI={format_duration(largest.interval_ns)}, "
              f"block={format_bytes(largest.size)}, swap bound={bound_gb:.2f} GB "
              f"(>> block size, so this behavior is worth swapping)")


if __name__ == "__main__":
    main()
