#!/usr/bin/env python
"""Quickstart: profile the memory behaviors of a small MLP training run.

This is the five-minute tour of the library:

1. describe a training workload with :class:`repro.TrainingRunConfig`;
2. run it with :func:`repro.run_training_session` — the device allocator and
   every tensor access are instrumented automatically;
3. analyse the recorded trace: access-time intervals, occupation breakdown,
   Gantt chart and iterative-pattern report.

Run with:  python examples/quickstart.py
"""

from repro import TrainingRunConfig, run_training_session
from repro.core import (
    build_gantt_chart,
    compute_access_intervals,
    detect_iterative_pattern,
    occupation_breakdown,
    summarize_intervals,
)
from repro.units import format_bytes
from repro.viz import render_gantt


def main() -> None:
    config = TrainingRunConfig(
        model="mlp",
        model_kwargs={"hidden_dim": 512},
        dataset="two_cluster",
        batch_size=256,
        iterations=5,
        execution_mode="eager",       # actually computes: the loss goes down
        label="quickstart MLP",
    )
    print(f"Training {config.describe()} on a simulated Titan X (Pascal)...\n")
    result = run_training_session(config)

    print("Per-iteration loss (eager execution computes real values):")
    for stats in result.iteration_stats:
        print(f"  iteration {stats.index}: loss={stats.loss:.4f} "
              f"time={stats.duration_ns / 1e6:.2f} ms "
              f"peak={format_bytes(stats.peak_allocated_bytes)}")

    trace = result.trace
    print(f"\nRecorded {len(trace)} memory behaviors on {len(trace.block_ids())} device blocks.")

    intervals = compute_access_intervals(trace)
    summary = summarize_intervals(intervals)
    print(f"Access-time intervals: n={summary.count}, "
          f"p50={summary.p50_us:.1f} us, p90={summary.p90_us:.1f} us, "
          f"max={summary.max_us / 1e6:.3f} s")

    breakdown = occupation_breakdown(trace, label=config.label)
    print("\nOccupation breakdown at peak footprint:")
    print("  " + breakdown.format_row())

    patterns = detect_iterative_pattern(trace)
    print(f"\nIterative pattern: similarity={patterns.mean_sequence_similarity:.3f} "
          f"(iterative={patterns.is_iterative})")

    print("\nGantt chart of block lifetimes (first 5 iterations):")
    print(render_gantt(build_gantt_chart(trace, max_iterations=5), width=90, max_rows=20))


if __name__ == "__main__":
    main()
