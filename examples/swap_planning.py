#!/usr/bin/env python
"""The paper's future work: plan memory swapping from the recorded trace.

Runs the trace-driven swap planner (the "automatic cost model" announced in
the paper's conclusion) on the MLP workload and compares it against:

* a SwapAdvisor-style policy that swaps the largest tensors regardless of
  their access timing;
* a ZeRO-Offload-style policy that keeps optimizer state and gradients on the
  host;
* a gradient-checkpointing (recompute) estimate; and
* the paper's own counter-argument to weight pruning/quantization.

Run with:  python examples/swap_planning.py [--batch-size N] [--allow-overhead-ms M]
"""

import argparse

from repro.baselines import estimate_pruning, estimate_quantization, estimate_recompute_plan
from repro.experiments import paper_mlp_config, run_swap_planner
from repro.units import format_bytes, format_duration
from repro.viz import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch-size", type=int, default=16384)
    parser.add_argument("--allow-overhead-ms", type=float, default=0.0,
                        help="Runtime overhead budget the planner may spend (ms)")
    args = parser.parse_args()

    config = paper_mlp_config(batch_size=args.batch_size)
    print(f"Planning memory-pressure reduction for {config.describe()} ...\n")
    result = run_swap_planner(config=config,
                              allow_overhead_ns=args.allow_overhead_ms * 1e6)
    trace = result.session.trace

    print("ATI-aware swap plan (this work):")
    print(result.plan.describe())

    recompute = estimate_recompute_plan(trace, keep_every=2)
    pruning = estimate_pruning(trace, sparsity=0.9)
    quantization = estimate_quantization(trace, bits=8)

    rows = [
        {"approach": "ATI-aware swap planner",
         "peak saved": f"{100 * result.plan.savings_fraction:.1f}%",
         "overhead": format_duration(result.plan.total_overhead_ns)},
        {"approach": "SwapAdvisor-style (largest tensors)",
         "peak saved": f"{100 * result.swap_advisor_baseline.savings_fraction:.1f}%",
         "overhead": format_duration(result.swap_advisor_baseline.overhead_ns)},
        {"approach": "ZeRO-Offload-style (optimizer state)",
         "peak saved": f"{100 * result.zero_offload_baseline.savings_fraction:.1f}%",
         "overhead": format_duration(result.zero_offload_baseline.overhead_ns)},
        {"approach": "Gradient checkpointing (keep 1/2)",
         "peak saved": f"{100 * recompute.savings_fraction:.1f}%",
         "overhead": format_duration(recompute.recompute_time_overhead_ns)},
        {"approach": "Weight pruning (90% sparsity)",
         "peak saved": f"{100 * pruning.total_reduction_fraction:.1f}%",
         "overhead": "retraining"},
        {"approach": "Weight quantization (8-bit)",
         "peak saved": f"{100 * quantization.total_reduction_fraction:.1f}%",
         "overhead": "accuracy loss"},
    ]
    print("\nComparison of memory-pressure-reduction approaches on this trace:")
    print(render_table(rows))

    print(f"\nPeak footprint before: {format_bytes(result.plan.peak_bytes_before)}")
    print(f"Peak footprint after the planner's swaps: "
          f"{format_bytes(result.plan.estimated_peak_bytes_after)}")
    print("\nThe pruning/quantization rows illustrate the paper's Figure-5 argument: "
          "parameters are such a small share of the training footprint that compressing "
          "them barely moves the peak, while the high-ATI/large-block outliers that the "
          "planner targets account for most of it.")


if __name__ == "__main__":
    main()
